"""Tests for the relational-algebra evaluator."""

import pytest

from repro.errors import SchemaError
from repro.relational.algebra import (
    Difference,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    Union,
    evaluate,
)
from repro.relational.database import Database
from repro.relational.expressions import Comparison, ComparisonOp
from repro.relational.schema import RelationSchema, Schema


@pytest.fixture
def db():
    schema = Schema([
        RelationSchema("R", ["a", "b"]),
        RelationSchema("S", ["b", "c"]),
        RelationSchema("T", ["a", "b"]),
    ])
    database = Database(schema)
    database.insert_all("R", [(1, 10), (2, 20), (3, 10)])
    database.insert_all("S", [(10, "x"), (20, "y")])
    database.insert_all("T", [(1, 10), (9, 90)])
    return database


class TestScan:
    def test_scan_returns_all_rows(self, db):
        result = evaluate(Scan("R"), db)
        assert result.columns == ["a", "b"]
        assert result.rows == [(1, 10), (2, 20), (3, 10)]


class TestSelect:
    def test_positional_condition(self, db):
        expr = Select(Scan("R"), Comparison(1, ComparisonOp.EQ, 10))
        result = evaluate(expr, db)
        assert result.rows == [(1, 10), (3, 10)]

    def test_position_vs_position(self, db):
        expr = Select(Scan("R"), Comparison(0, ComparisonOp.LT, 1,
                                            right_is_position=True))
        assert len(evaluate(expr, db).rows) == 3


class TestProject:
    def test_projection_dedupes(self, db):
        result = evaluate(Project(Scan("R"), ["b"]), db)
        assert result.rows == [(10,), (20,)]

    def test_projection_keeps_duplicates_when_asked(self, db):
        result = evaluate(Project(Scan("R"), ["b"], deduplicate=False), db)
        assert result.rows == [(10,), (20,), (10,)]

    def test_unknown_column_rejected(self, db):
        with pytest.raises(SchemaError):
            evaluate(Project(Scan("R"), ["zzz"]), db)

    def test_reordering(self, db):
        result = evaluate(Project(Scan("R"), ["b", "a"]), db)
        assert result.rows[0] == (10, 1)


class TestJoin:
    def test_natural_join_on_shared_column(self, db):
        result = evaluate(Join(Scan("R"), Scan("S")), db)
        assert result.columns == ["a", "b", "c"]
        assert set(result.rows) == {(1, 10, "x"), (3, 10, "x"),
                                    (2, 20, "y")}

    def test_join_without_shared_columns_is_cross_product(self, db):
        renamed = Rename(Scan("S"), ["d", "e"])
        result = evaluate(Join(Scan("R"), renamed), db)
        assert len(result.rows) == 6

    def test_self_join_via_rename(self, db):
        left = Rename(Scan("R"), ["a", "b"])
        right = Rename(Scan("T"), ["a", "b"])
        result = evaluate(Join(left, right), db)
        assert result.rows == [(1, 10)]


class TestUnionDifference:
    def test_union_dedupes(self, db):
        result = evaluate(Union(Scan("R"), Scan("T")), db)
        assert len(result.rows) == 4  # (1,10) shared

    def test_union_bag(self, db):
        result = evaluate(Union(Scan("R"), Scan("T"), deduplicate=False), db)
        assert len(result.rows) == 5

    def test_union_arity_mismatch(self, db):
        with pytest.raises(SchemaError):
            evaluate(Union(Scan("R"), Project(Scan("S"), ["b"])), db)

    def test_difference(self, db):
        result = evaluate(Difference(Scan("R"), Scan("T")), db)
        assert set(result.rows) == {(2, 20), (3, 10)}

    def test_difference_arity_mismatch(self, db):
        with pytest.raises(SchemaError):
            evaluate(Difference(Scan("R"), Project(Scan("S"), ["b"])), db)


class TestRename:
    def test_rename_changes_columns(self, db):
        result = evaluate(Rename(Scan("R"), ["x", "y"]), db)
        assert result.columns == ["x", "y"]

    def test_rename_arity_checked(self, db):
        with pytest.raises(SchemaError):
            evaluate(Rename(Scan("R"), ["x"]), db)


class TestComposition:
    def test_select_project_join_pipeline(self, db):
        expr = Project(
            Select(
                Join(Scan("R"), Scan("S")),
                Comparison(2, ComparisonOp.EQ, "x"),
            ),
            ["a"],
        )
        result = evaluate(expr, db)
        assert set(result.rows) == {(1,), (3,)}
