"""Tests for relation and database schemas."""

import pytest

from repro.errors import SchemaError, UnknownRelationError
from repro.relational.schema import (
    Attribute,
    ForeignKey,
    RelationSchema,
    Schema,
)
from repro.relational.types import INT, STRING


class TestAttribute:
    def test_valid_names(self):
        Attribute("FID")
        Attribute("f_id_2")

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("bad name")
        with pytest.raises(SchemaError):
            Attribute("")


class TestRelationSchema:
    def test_string_attributes_promoted(self):
        schema = RelationSchema("R", ["a", "b"])
        assert schema.attribute_names == ("a", "b")
        assert schema.arity == 2

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["a", "a"])

    def test_empty_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [])

    def test_key_must_exist(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["a"], key=["missing"])

    def test_position_lookup(self):
        schema = RelationSchema("R", ["a", "b", "c"])
        assert schema.position("b") == 1
        with pytest.raises(SchemaError):
            schema.position("z")

    def test_key_positions(self):
        schema = RelationSchema("R", ["a", "b", "c"], key=["c", "a"])
        assert schema.key_positions() == (2, 0)

    def test_foreign_key_columns_must_exist(self):
        fk = ForeignKey(("missing",), "S", ("k",))
        with pytest.raises(SchemaError):
            RelationSchema("R", ["a"], foreign_keys=[fk])

    def test_equality_and_hash(self):
        r1 = RelationSchema("R", [Attribute("a", INT)], key=["a"])
        r2 = RelationSchema("R", [Attribute("a", INT)], key=["a"])
        assert r1 == r2
        assert hash(r1) == hash(r2)
        r3 = RelationSchema("R", [Attribute("a", STRING)], key=["a"])
        assert r1 != r3


class TestForeignKey:
    def test_mismatched_column_counts_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKey(("a", "b"), "S", ("k",))

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKey((), "S", ())


class TestSchema:
    def test_duplicate_relation_rejected(self):
        schema = Schema([RelationSchema("R", ["a"])])
        with pytest.raises(SchemaError):
            schema.add(RelationSchema("R", ["b"]))

    def test_unknown_relation_lookup(self):
        schema = Schema()
        with pytest.raises(UnknownRelationError):
            schema.relation("nope")

    def test_validate_checks_fk_targets(self):
        fk = ForeignKey(("a",), "Missing", ("k",))
        schema = Schema([RelationSchema("R", ["a"], foreign_keys=[fk])])
        with pytest.raises(SchemaError):
            schema.validate()

    def test_validate_requires_fk_to_reference_key(self):
        target = RelationSchema("S", ["k", "v"], key=["k"])
        fk = ForeignKey(("a",), "S", ("v",))  # v is not the key
        schema = Schema([target, RelationSchema("R", ["a"],
                                                foreign_keys=[fk])])
        with pytest.raises(SchemaError):
            schema.validate()

    def test_validate_passes_on_good_schema(self):
        target = RelationSchema("S", ["k"], key=["k"])
        fk = ForeignKey(("a",), "S", ("k",))
        schema = Schema([target, RelationSchema("R", ["a"],
                                                foreign_keys=[fk])])
        schema.validate()

    def test_iteration_order_is_insertion_order(self):
        schema = Schema([
            RelationSchema("B", ["x"]),
            RelationSchema("A", ["y"]),
        ])
        assert schema.relation_names == ("B", "A")
