"""Tests for hash-partitioned relation storage (shards, ordinals, bulk
loads, the maintained stats version, and plan-driven projection)."""

import pytest

from repro.errors import KeyViolationError
from repro.relational.database import Database
from repro.relational.schema import RelationSchema, Schema
from repro.relational.statistics import RelationStatistics
from repro.relational.tuples import Row


@pytest.fixture
def schema():
    return Schema([
        RelationSchema("Keyed", ["k", "v"], key=["k"]),
        RelationSchema("Plain", ["a", "b"]),
    ])


class TestShardPartitioning:
    def test_shards_partition_the_rows(self, schema):
        db = Database(schema, shards=4)
        db.insert_all("Plain", [(i, i % 5) for i in range(100)])
        instance = db.relation("Plain")
        assert instance.shard_count == 4
        pairs = sorted(
            pair
            for shard in range(4)
            for pair in instance.shard_ordinal_pairs(shard)
        )
        assert pairs == [(i, (i, i % 5)) for i in range(100)]

    def test_keyed_relations_hash_on_the_key(self, schema):
        db = Database(schema, shards=3)
        db.insert_all("Keyed", [(str(i), i) for i in range(60)])
        instance = db.relation("Keyed")
        # Every row of a shard must hash back to that shard.
        for shard in range(3):
            for __, values in instance.shard_ordinal_pairs(shard):
                assert hash((values[0],)) % 3 == shard

    def test_shard_pairs_are_ordinal_ascending(self, schema):
        db = Database(schema, shards=3)
        db.insert_all("Plain", [(i, 0) for i in range(30)])
        db.relation("Plain").delete(Row("Plain", (7, 0)))
        db.insert("Plain", 7, 0)  # re-insert: fresh, larger ordinal
        instance = db.relation("Plain")
        for shard in range(3):
            ordinals = [o for o, __ in instance.shard_ordinal_pairs(shard)]
            assert ordinals == sorted(ordinals)
        all_pairs = [
            pair
            for shard in range(3)
            for pair in instance.shard_ordinal_pairs(shard)
        ]
        assert len(all_pairs) == 30
        assert max(o for o, __ in all_pairs) == 30  # fresh ordinal issued

    def test_shard_lookup_pairs_match_aggregate_probe(self, schema):
        for shards in (1, 4):
            db = Database(schema, shards=shards)
            db.insert_all("Plain", [(i, i % 3) for i in range(40)])
            instance = db.relation("Plain")
            merged = sorted(
                pair
                for shard in range(instance.shard_count)
                for pair in instance.shard_lookup_pairs(shard, (1,), (2,))
            )
            expected = [
                (instance._rows[row], row.values)
                for row in instance.lookup((1,), (2,))
            ]
            assert merged == sorted(expected)

    def test_reshard_back_to_one(self, schema):
        db = Database(schema, shards=5)
        db.insert_all("Plain", [(i, 0) for i in range(20)])
        db.reshard(1)
        assert db.shards == 1
        assert db.relation("Plain").shard_count == 1
        assert len(db.relation("Plain")) == 20
        # Single-shard accessors serve from the aggregate structures.
        assert db.relation("Plain").shard_ordinal_pairs(0) == [
            (i, (i, 0)) for i in range(20)
        ]

    def test_shard_statistics_merge_to_aggregate(self, schema):
        db = Database(schema, shards=4)
        db.insert_all("Plain", [(i % 7, i % 3) for i in range(50)])
        instance = db.relation("Plain")
        merged = RelationStatistics.merged(instance.shard_statistics(), 2)
        assert merged.cardinality == instance.stats.cardinality
        for position in (0, 1):
            assert (
                merged._column_counts[position]
                == instance.stats._column_counts[position]
            )


class TestBulkInsertMany:
    def test_bulk_path_equals_per_row_semantics(self, schema):
        bulk = Database(schema)
        slow = Database(schema)
        rows = [(i, i % 4) for i in range(200)] + [(0, 0)]  # duplicate
        returned = bulk.relation("Plain").insert_many(rows)
        for values in rows:
            slow.relation("Plain").insert(values)
        assert len(returned) == len(rows)
        assert bulk.relation("Plain").rows() == slow.relation("Plain").rows()
        assert (
            bulk.relation("Plain").stats._column_counts
            == slow.relation("Plain").stats._column_counts
        )
        assert bulk.stats_version == slow.stats_version

    def test_bulk_key_violation_keeps_prior_rows(self, schema):
        db = Database(schema)
        rows = [(str(i), i) for i in range(100)] + [("5", 999)]
        with pytest.raises(KeyViolationError):
            db.relation("Keyed").insert_many(rows)
        # Everything before the offending row stayed applied, exactly
        # like the per-row loop, and its statistics landed.
        assert len(db.relation("Keyed")) == 100
        assert db.relation("Keyed").stats.cardinality == 100
        assert db.stats_version == 100

    def test_bulk_load_into_shards(self, schema):
        db = Database(schema, shards=3)
        db.relation("Plain").insert_many([(i, 0) for i in range(150)])
        instance = db.relation("Plain")
        total = sum(
            len(instance.shard_ordinal_pairs(s)) for s in range(3)
        )
        assert total == 150
        merged = RelationStatistics.merged(instance.shard_statistics(), 2)
        assert merged.cardinality == 150


class TestStatsVersion:
    def test_counter_tracks_effective_mutations(self, schema):
        db = Database(schema)
        assert db.stats_version == 0
        db.insert("Plain", 1, 2)
        db.insert("Plain", 1, 2)  # set-semantics no-op
        assert db.stats_version == 1
        db.insert_all("Plain", [(i, 0) for i in range(100)])
        assert db.stats_version == 101
        db.relation("Plain").delete(Row("Plain", (1, 2)))
        db.relation("Plain").delete(Row("Plain", (1, 2)))  # absent no-op
        assert db.stats_version == 102

    def test_counter_matches_summed_instance_versions(self, schema):
        db = Database(schema, shards=2)
        db.insert_all("Plain", [(i, 0) for i in range(80)])
        db.insert("Keyed", "x", 1)
        db.relation("Plain").delete(Row("Plain", (3, 0)))
        assert db.stats_version == sum(
            inst.stats.version for inst in db.relations()
        )

    def test_direct_instance_mutations_are_counted(self, schema):
        db = Database(schema)
        db.relation("Plain").insert((1, 1))
        assert db.stats_version == 1


class TestCopyBulk:
    def test_copy_preserves_rows_order_and_shards(self, schema):
        db = Database(schema, shards=3)
        db.insert_all("Plain", [(i, i % 4) for i in range(120)])
        db.insert_all("Keyed", [(str(i), i) for i in range(90)])
        clone = db.copy()
        assert clone.shards == 3
        for name in ("Plain", "Keyed"):
            assert clone.relation(name).rows() == db.relation(name).rows()
            assert (
                clone.relation(name).stats._column_counts
                == db.relation(name).stats._column_counts
            )
        clone.insert("Plain", 999, 0)
        assert len(db.relation("Plain")) == 120

    def test_copy_tolerates_keyless_duplicate_free_load(self, schema):
        db = Database(schema)
        db.insert_all("Keyed", [(str(i), i) for i in range(70)])
        clone = db.copy()
        assert clone.relation("Keyed").lookup_key(("5",)) is not None


class TestProjection:
    def _plan(self, db, text):
        from repro.cq.parser import parse_query
        from repro.cq.plan import plan_query

        return plan_query(parse_query(text), db)

    def test_projection_excludes_unreferenced_relations(self, schema):
        db = Database(schema)
        db.insert_all("Plain", [(i, i % 3) for i in range(10)])
        db.insert_all("Keyed", [(str(i), i) for i in range(10)])
        plan = self._plan(db, "Q(A, B) :- Plain(A, B), Plain(B, X)")
        projected = db.project_for_plan(plan)
        assert set(projected) == {"Plain"}
        assert projected["Plain"] == [row.values for row in
                                      db.relation("Plain")]

    def test_suffix_projection_keeps_self_join_relation(self, schema):
        db = Database(schema)
        db.insert_all("Plain", [(i, i % 3) for i in range(10)])
        plan = self._plan(db, "Q(A, X) :- Plain(A, B), Plain(B, X)")
        # The suffix re-probes the first step's relation, so it must
        # still ship even when the seeds come from the same relation.
        assert set(db.project_for_plan(plan, 1)) == {"Plain"}

    def test_from_projection_round_trips_for_execution(self, schema):
        from repro.cq.executor import execute_plan

        db = Database(schema)
        db.insert_all("Plain", [(i, i % 3) for i in range(30)])
        plan = self._plan(db, "Q(A, X) :- Plain(A, B), Plain(B, X)")
        rebuilt = Database.from_projection(
            db.schema, db.project_for_plan(plan)
        )
        assert list(execute_plan(plan, rebuilt)) == list(
            execute_plan(plan, db)
        )
