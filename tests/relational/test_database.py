"""Tests for database instances and integrity enforcement."""

import pytest

from repro.errors import (
    ArityError,
    ForeignKeyViolationError,
    KeyViolationError,
    TypeMismatchError,
    UnknownRelationError,
)
from repro.relational.database import Database
from repro.relational.schema import (
    Attribute,
    ForeignKey,
    RelationSchema,
    Schema,
)
from repro.relational.tuples import Row
from repro.relational.types import INT, STRING


@pytest.fixture
def schema():
    return Schema([
        RelationSchema(
            "Family",
            [Attribute("FID", STRING), Attribute("FName", STRING)],
            key=["FID"],
        ),
        RelationSchema(
            "Intro",
            [Attribute("FID", STRING), Attribute("Text", STRING)],
            key=["FID"],
            foreign_keys=[ForeignKey(("FID",), "Family", ("FID",))],
        ),
    ])


@pytest.fixture
def database(schema):
    return Database(schema)


class TestInsert:
    def test_insert_and_iterate(self, database):
        database.insert("Family", "1", "A")
        database.insert("Family", "2", "B")
        rows = database.relation("Family").rows()
        assert [r.values for r in rows] == [("1", "A"), ("2", "B")]

    def test_arity_checked(self, database):
        with pytest.raises(ArityError):
            database.insert("Family", "1")

    def test_domain_checked(self, database):
        with pytest.raises(TypeMismatchError):
            database.insert("Family", 1, "A")

    def test_key_violation(self, database):
        database.insert("Family", "1", "A")
        with pytest.raises(KeyViolationError):
            database.insert("Family", "1", "B")

    def test_identical_reinsert_is_noop(self, database):
        database.insert("Family", "1", "A")
        database.insert("Family", "1", "A")
        assert len(database.relation("Family")) == 1

    def test_unknown_relation(self, database):
        with pytest.raises(UnknownRelationError):
            database.insert("Nope", "x")

    def test_insert_all(self, database):
        rows = database.insert_all("Family", [("1", "A"), ("2", "B")])
        assert len(rows) == 2
        assert database.total_rows() == 2


class TestDelete:
    def test_delete_present(self, database):
        database.insert("Family", "1", "A")
        assert database.delete("Family", "1", "A")
        assert len(database.relation("Family")) == 0

    def test_delete_absent_returns_false(self, database):
        assert not database.delete("Family", "1", "A")

    def test_delete_clears_key_index(self, database):
        database.insert("Family", "1", "A")
        database.delete("Family", "1", "A")
        database.insert("Family", "1", "B")  # same key, no violation
        assert len(database.relation("Family")) == 1


class TestLookups:
    def test_key_lookup(self, database):
        database.insert("Family", "1", "A")
        row = database.relation("Family").lookup_key(("1",))
        assert row is not None and row.values == ("1", "A")
        assert database.relation("Family").lookup_key(("9",)) is None

    def test_secondary_index(self, database):
        database.insert("Family", "1", "A")
        database.insert("Family", "2", "A")
        database.insert("Family", "3", "B")
        matches = database.relation("Family").lookup((1,), ("A",))
        assert {r.values for r in matches} == {("1", "A"), ("2", "A")}

    def test_index_maintained_after_insert(self, database):
        instance = database.relation("Family")
        database.insert("Family", "1", "A")
        instance.lookup((1,), ("A",))  # build index
        database.insert("Family", "2", "A")
        assert len(instance.lookup((1,), ("A",))) == 2

    def test_index_maintained_after_delete(self, database):
        instance = database.relation("Family")
        database.insert("Family", "1", "A")
        instance.lookup((1,), ("A",))
        database.delete("Family", "1", "A")
        assert instance.lookup((1,), ("A",)) == []

    def test_empty_positions_returns_all(self, database):
        database.insert("Family", "1", "A")
        assert len(database.relation("Family").lookup((), ())) == 1


class TestForeignKeys:
    def test_violation_detected(self, database):
        database.insert("Intro", "9", "text")
        with pytest.raises(ForeignKeyViolationError):
            database.check_foreign_keys()

    def test_passes_when_satisfied(self, database):
        database.insert("Family", "1", "A")
        database.insert("Intro", "1", "text")
        database.check_foreign_keys()


class TestCopy:
    def test_copy_is_independent(self, database):
        database.insert("Family", "1", "A")
        clone = database.copy()
        clone.insert("Family", "2", "B")
        assert database.total_rows() == 1
        assert clone.total_rows() == 2


class TestSortedIndexes:
    """Sorted secondary indexes behind ordered access paths."""

    @pytest.fixture
    def numbers(self):
        schema = Schema([RelationSchema("N", ["a", "b"])])
        db = Database(schema)
        db.insert_all("N", [(i, i % 5) for i in range(20)])
        return db.relation("N")

    def test_range_lookup_half_open(self, numbers):
        from repro.relational.statistics import Interval

        rows = numbers.range_lookup(0, Interval(lo=3, hi=7, hi_open=True))
        assert [row[0] for row in rows] == [3, 4, 5, 6]

    def test_range_lookup_open_lo_and_unbounded_hi(self, numbers):
        from repro.relational.statistics import Interval

        rows = numbers.range_lookup(0, Interval(lo=17, lo_open=True))
        assert [row[0] for row in rows] == [18, 19]

    def test_equal_keys_keep_insertion_order(self, numbers):
        from repro.relational.statistics import Interval

        rows = numbers.range_lookup(1, Interval(lo=2, hi=2))
        assert [row[0] for row in rows] == [2, 7, 12, 17]

    def test_index_maintained_across_insert_and_delete(self, numbers):
        from repro.relational.statistics import Interval

        interval = Interval(lo=100, hi=200)
        assert numbers.range_lookup(0, interval) == []
        numbers.insert((150, 0))
        assert [row[0] for row in numbers.range_lookup(0, interval)] == [150]
        numbers.delete(Row("N", (150, 0)))
        assert numbers.range_lookup(0, interval) == []

    def test_mixed_type_column_returns_none(self):
        from repro.relational.statistics import Interval

        schema = Schema([RelationSchema("M", ["a"])])
        db = Database(schema)
        db.insert_all("M", [(1,), ("x",)])
        assert db.relation("M").range_lookup(0, Interval(lo=0)) is None

    def test_mixed_type_insert_invalidates_existing_index(self, numbers):
        from repro.relational.statistics import Interval

        assert numbers.range_lookup(0, Interval(lo=0, hi=3)) is not None
        numbers.insert(("zzz", 0))
        assert numbers.range_lookup(0, Interval(lo=0, hi=3)) is None

    def test_delete_after_mixed_type_allows_rebuild(self, numbers):
        from repro.relational.statistics import Interval

        numbers.insert(("zzz", 0))
        assert numbers.range_lookup(0, Interval(lo=0, hi=3)) is None
        numbers.delete(Row("N", ("zzz", 0)))
        rows = numbers.range_lookup(0, Interval(lo=0, hi=3))
        assert [row[0] for row in rows] == [0, 1, 2, 3]

    def test_incomparable_probe_returns_none(self, numbers):
        from repro.relational.statistics import Interval

        assert numbers.range_lookup(0, Interval(lo="x")) is None

    def test_nan_rows_never_match_ranges(self):
        from repro.relational.statistics import Interval

        nan = float("nan")
        schema = Schema([RelationSchema("M", ["a"])])
        db = Database(schema)
        db.insert_all("M", [(1.0,), (nan,), (2.0,)])
        rows = db.relation("M").range_lookup(0, Interval())
        assert [row[0] for row in rows] == [1.0, 2.0]

    def test_bulk_load_drops_and_rebuilds_sorted_index(self, numbers):
        from repro.relational.statistics import Interval

        assert numbers.range_lookup(0, Interval(lo=0, hi=1)) is not None
        numbers.insert_many([(i, 0) for i in range(100, 300)])
        rows = numbers.range_lookup(0, Interval(lo=100, hi=102))
        assert [row[0] for row in rows] == [100, 101, 102]


class TestRow:
    def test_equality_includes_relation(self):
        assert Row("R", (1, 2)) != Row("S", (1, 2))
        assert Row("R", (1, 2)) == Row("R", (1, 2))

    def test_hashable(self):
        assert len({Row("R", (1,)), Row("R", (1,))}) == 1

    def test_project(self):
        row = Row("R", ("a", "b", "c"))
        assert row.project((2, 0)) == ("c", "a")

    def test_iteration_and_len(self):
        row = Row("R", (1, 2, 3))
        assert list(row) == [1, 2, 3]
        assert len(row) == 3
