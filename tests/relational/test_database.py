"""Tests for database instances and integrity enforcement."""

import pytest

from repro.errors import (
    ArityError,
    ForeignKeyViolationError,
    KeyViolationError,
    TypeMismatchError,
    UnknownRelationError,
)
from repro.relational.database import Database
from repro.relational.schema import (
    Attribute,
    ForeignKey,
    RelationSchema,
    Schema,
)
from repro.relational.tuples import Row
from repro.relational.types import STRING


@pytest.fixture
def schema():
    return Schema([
        RelationSchema(
            "Family",
            [Attribute("FID", STRING), Attribute("FName", STRING)],
            key=["FID"],
        ),
        RelationSchema(
            "Intro",
            [Attribute("FID", STRING), Attribute("Text", STRING)],
            key=["FID"],
            foreign_keys=[ForeignKey(("FID",), "Family", ("FID",))],
        ),
    ])


@pytest.fixture
def database(schema):
    return Database(schema)


class TestInsert:
    def test_insert_and_iterate(self, database):
        database.insert("Family", "1", "A")
        database.insert("Family", "2", "B")
        rows = database.relation("Family").rows()
        assert [r.values for r in rows] == [("1", "A"), ("2", "B")]

    def test_arity_checked(self, database):
        with pytest.raises(ArityError):
            database.insert("Family", "1")

    def test_domain_checked(self, database):
        with pytest.raises(TypeMismatchError):
            database.insert("Family", 1, "A")

    def test_key_violation(self, database):
        database.insert("Family", "1", "A")
        with pytest.raises(KeyViolationError):
            database.insert("Family", "1", "B")

    def test_identical_reinsert_is_noop(self, database):
        database.insert("Family", "1", "A")
        database.insert("Family", "1", "A")
        assert len(database.relation("Family")) == 1

    def test_unknown_relation(self, database):
        with pytest.raises(UnknownRelationError):
            database.insert("Nope", "x")

    def test_insert_all(self, database):
        rows = database.insert_all("Family", [("1", "A"), ("2", "B")])
        assert len(rows) == 2
        assert database.total_rows() == 2


class TestDelete:
    def test_delete_present(self, database):
        database.insert("Family", "1", "A")
        assert database.delete("Family", "1", "A")
        assert len(database.relation("Family")) == 0

    def test_delete_absent_returns_false(self, database):
        assert not database.delete("Family", "1", "A")

    def test_delete_clears_key_index(self, database):
        database.insert("Family", "1", "A")
        database.delete("Family", "1", "A")
        database.insert("Family", "1", "B")  # same key, no violation
        assert len(database.relation("Family")) == 1


class TestLookups:
    def test_key_lookup(self, database):
        database.insert("Family", "1", "A")
        row = database.relation("Family").lookup_key(("1",))
        assert row is not None and row.values == ("1", "A")
        assert database.relation("Family").lookup_key(("9",)) is None

    def test_secondary_index(self, database):
        database.insert("Family", "1", "A")
        database.insert("Family", "2", "A")
        database.insert("Family", "3", "B")
        matches = database.relation("Family").lookup((1,), ("A",))
        assert {r.values for r in matches} == {("1", "A"), ("2", "A")}

    def test_index_maintained_after_insert(self, database):
        instance = database.relation("Family")
        database.insert("Family", "1", "A")
        instance.lookup((1,), ("A",))  # build index
        database.insert("Family", "2", "A")
        assert len(instance.lookup((1,), ("A",))) == 2

    def test_index_maintained_after_delete(self, database):
        instance = database.relation("Family")
        database.insert("Family", "1", "A")
        instance.lookup((1,), ("A",))
        database.delete("Family", "1", "A")
        assert instance.lookup((1,), ("A",)) == []

    def test_empty_positions_returns_all(self, database):
        database.insert("Family", "1", "A")
        assert len(database.relation("Family").lookup((), ())) == 1


class TestForeignKeys:
    def test_violation_detected(self, database):
        database.insert("Intro", "9", "text")
        with pytest.raises(ForeignKeyViolationError):
            database.check_foreign_keys()

    def test_passes_when_satisfied(self, database):
        database.insert("Family", "1", "A")
        database.insert("Intro", "1", "text")
        database.check_foreign_keys()


class TestCopy:
    def test_copy_is_independent(self, database):
        database.insert("Family", "1", "A")
        clone = database.copy()
        clone.insert("Family", "2", "B")
        assert database.total_rows() == 1
        assert clone.total_rows() == 2


class TestSortedIndexes:
    """Sorted secondary indexes behind ordered access paths."""

    @pytest.fixture
    def numbers(self):
        schema = Schema([RelationSchema("N", ["a", "b"])])
        db = Database(schema)
        db.insert_all("N", [(i, i % 5) for i in range(20)])
        return db.relation("N")

    def test_range_lookup_half_open(self, numbers):
        from repro.relational.statistics import Interval

        rows = numbers.range_lookup(0, Interval(lo=3, hi=7, hi_open=True))
        assert [row[0] for row in rows] == [3, 4, 5, 6]

    def test_range_lookup_open_lo_and_unbounded_hi(self, numbers):
        from repro.relational.statistics import Interval

        rows = numbers.range_lookup(0, Interval(lo=17, lo_open=True))
        assert [row[0] for row in rows] == [18, 19]

    def test_equal_keys_keep_insertion_order(self, numbers):
        from repro.relational.statistics import Interval

        rows = numbers.range_lookup(1, Interval(lo=2, hi=2))
        assert [row[0] for row in rows] == [2, 7, 12, 17]

    def test_index_maintained_across_insert_and_delete(self, numbers):
        from repro.relational.statistics import Interval

        interval = Interval(lo=100, hi=200)
        assert numbers.range_lookup(0, interval) == []
        numbers.insert((150, 0))
        assert [row[0] for row in numbers.range_lookup(0, interval)] == [150]
        numbers.delete(Row("N", (150, 0)))
        assert numbers.range_lookup(0, interval) == []

    def test_mixed_type_column_returns_none(self):
        from repro.relational.statistics import Interval

        schema = Schema([RelationSchema("M", ["a"])])
        db = Database(schema)
        db.insert_all("M", [(1,), ("x",)])
        assert db.relation("M").range_lookup(0, Interval(lo=0)) is None

    def test_mixed_type_insert_invalidates_existing_index(self, numbers):
        from repro.relational.statistics import Interval

        assert numbers.range_lookup(0, Interval(lo=0, hi=3)) is not None
        numbers.insert(("zzz", 0))
        assert numbers.range_lookup(0, Interval(lo=0, hi=3)) is None

    def test_delete_after_mixed_type_allows_rebuild(self, numbers):
        from repro.relational.statistics import Interval

        numbers.insert(("zzz", 0))
        assert numbers.range_lookup(0, Interval(lo=0, hi=3)) is None
        numbers.delete(Row("N", ("zzz", 0)))
        rows = numbers.range_lookup(0, Interval(lo=0, hi=3))
        assert [row[0] for row in rows] == [0, 1, 2, 3]

    def test_incomparable_probe_returns_none(self, numbers):
        from repro.relational.statistics import Interval

        assert numbers.range_lookup(0, Interval(lo="x")) is None

    def test_nan_rows_never_match_ranges(self):
        from repro.relational.statistics import Interval

        nan = float("nan")
        schema = Schema([RelationSchema("M", ["a"])])
        db = Database(schema)
        db.insert_all("M", [(1.0,), (nan,), (2.0,)])
        rows = db.relation("M").range_lookup(0, Interval())
        assert [row[0] for row in rows] == [1.0, 2.0]

    def test_bulk_load_drops_and_rebuilds_sorted_index(self, numbers):
        from repro.relational.statistics import Interval

        assert numbers.range_lookup(0, Interval(lo=0, hi=1)) is not None
        numbers.insert_many([(i, 0) for i in range(100, 300)])
        rows = numbers.range_lookup(0, Interval(lo=100, hi=102))
        assert [row[0] for row in rows] == [100, 101, 102]


class TestCompositeIndexes:
    """Composite secondary indexes: hash buckets kept sorted for bisect."""

    @pytest.fixture
    def wide(self):
        schema = Schema([RelationSchema("W", ["ty", "k"])])
        db = Database(schema)
        db.insert_all(
            "W", [("hot" if i % 2 == 0 else "cold", i) for i in range(20)]
        )
        return db.relation("W")

    def test_composite_lookup_bisects_inside_bucket(self, wide):
        from repro.relational.statistics import Interval

        rows = wide.composite_lookup(
            (0,), ("hot",), 1, Interval(lo=4, hi=10, hi_open=True)
        )
        assert [row[1] for row in rows] == [4, 6, 8]

    def test_missing_bucket_is_empty_not_fallback(self, wide):
        from repro.relational.statistics import Interval

        assert wide.composite_lookup((0,), ("warm",), 1, Interval(lo=0)) == []

    def test_maintained_across_insert_and_delete(self, wide):
        from repro.relational.statistics import Interval

        interval = Interval(lo=100, hi=200)
        assert wide.composite_lookup((0,), ("hot",), 1, interval) == []
        wide.insert(("hot", 150))
        assert [
            row[1]
            for row in wide.composite_lookup((0,), ("hot",), 1, interval)
        ] == [150]
        wide.delete(Row("W", ("hot", 150)))
        assert wide.composite_lookup((0,), ("hot",), 1, interval) == []

    def test_insert_creates_new_bucket(self, wide):
        from repro.relational.statistics import Interval

        wide.ensure_composite_index((0,), 1)
        wide.insert(("warm", 7))
        rows = wide.composite_lookup((0,), ("warm",), 1, Interval(lo=0))
        assert [row[1] for row in rows] == [7]

    def test_delete_empties_bucket_to_missing(self, wide):
        from repro.relational.statistics import Interval

        wide.ensure_composite_index((0,), 1)
        wide.insert(("warm", 7))
        wide.delete(Row("W", ("warm", 7)))
        assert wide.composite_lookup((0,), ("warm",), 1, Interval(lo=0)) == []

    def test_nan_rows_never_enter_buckets(self):
        from repro.relational.statistics import Interval

        nan = float("nan")
        schema = Schema([RelationSchema("W", ["ty", "k"])])
        db = Database(schema)
        db.insert_all("W", [("hot", 1.0), ("hot", nan), ("hot", 2.0)])
        instance = db.relation("W")
        rows = instance.composite_lookup((0,), ("hot",), 1, Interval())
        assert [row[1] for row in rows] == [1.0, 2.0]
        # Incremental inserts skip NaN too.
        instance.insert(("hot", nan))
        rows = instance.composite_lookup((0,), ("hot",), 1, Interval())
        assert [row[1] for row in rows] == [1.0, 2.0]

    def test_mixed_type_bucket_degrades_alone(self):
        from repro.relational.statistics import Interval

        schema = Schema([RelationSchema("W", ["ty", "k"])])
        db = Database(schema)
        db.insert_all(
            "W", [("hot", 1), ("hot", "x"), ("cold", 2), ("cold", 3)]
        )
        instance = db.relation("W")
        # The mixed bucket reports unusable (caller falls back to hash)...
        assert (
            instance.composite_lookup((0,), ("hot",), 1, Interval(lo=0))
            is None
        )
        # ...while the clean bucket keeps serving composite probes.
        rows = instance.composite_lookup((0,), ("cold",), 1, Interval(lo=3))
        assert [row[1] for row in rows] == [3]

    def test_mixed_type_insert_degrades_bucket(self, wide):
        from repro.relational.statistics import Interval

        assert (
            wide.composite_lookup((0,), ("hot",), 1, Interval(lo=0))
            is not None
        )
        wide.insert(("hot", "zzz"))
        assert wide.composite_lookup((0,), ("hot",), 1, Interval(lo=0)) is None
        # Other buckets are unaffected.
        assert (
            wide.composite_lookup((0,), ("cold",), 1, Interval(lo=0))
            is not None
        )

    def test_delete_after_mixed_type_allows_rebuild(self, wide):
        from repro.relational.statistics import Interval

        wide.insert(("hot", "zzz"))
        assert wide.composite_lookup((0,), ("hot",), 1, Interval(lo=0)) is None
        wide.delete(Row("W", ("hot", "zzz")))
        rows = wide.composite_lookup(
            (0,), ("hot",), 1, Interval(lo=0, hi=4, hi_open=True)
        )
        assert [row[1] for row in rows] == [0, 2]

    def test_incomparable_probe_returns_none(self, wide):
        from repro.relational.statistics import Interval

        assert (
            wide.composite_lookup((0,), ("hot",), 1, Interval(lo="x")) is None
        )

    def test_bulk_load_drops_and_rebuilds_composite_index(self, wide):
        from repro.relational.statistics import Interval

        assert (
            wide.composite_lookup((0,), ("hot",), 1, Interval(lo=0))
            is not None
        )
        wide.insert_many([("hot", i) for i in range(100, 300)])
        rows = wide.composite_lookup((0,), ("hot",), 1, Interval(lo=100, hi=104))
        assert [row[1] for row in rows] == [100, 101, 102, 103, 104]

    def test_equal_order_keys_keep_insertion_order(self):
        from repro.relational.statistics import Interval

        schema = Schema([RelationSchema("W", ["ty", "k", "i"])])
        db = Database(schema)
        db.insert_all(
            "W",
            [("hot", 5, 0), ("hot", 5, 1), ("cold", 5, 2), ("hot", 5, 3)],
        )
        rows = db.relation("W").composite_lookup(
            (0,), ("hot",), 1, Interval(lo=5, hi=5)
        )
        assert [row[2] for row in rows] == [0, 1, 3]

    def test_multi_position_hash_component(self):
        from repro.relational.statistics import Interval

        schema = Schema([RelationSchema("W", ["a", "b", "k"])])
        db = Database(schema)
        db.insert_all(
            "W", [(i % 2, i % 3, i) for i in range(30)]
        )
        rows = db.relation("W").composite_lookup(
            (0, 1), (1, 2), 2, Interval(lo=0, hi=12, hi_open=True)
        )
        assert [row[2] for row in rows] == [5, 11]


class TestRow:
    def test_equality_includes_relation(self):
        assert Row("R", (1, 2)) != Row("S", (1, 2))
        assert Row("R", (1, 2)) == Row("R", (1, 2))

    def test_hashable(self):
        assert len({Row("R", (1,)), Row("R", (1,))}) == 1

    def test_project(self):
        row = Row("R", ("a", "b", "c"))
        assert row.project((2, 0)) == ("c", "a")

    def test_iteration_and_len(self):
        row = Row("R", (1, 2, 3))
        assert list(row) == [1, 2, 3]
        assert len(row) == 3
