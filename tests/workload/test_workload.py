"""Tests for query generation, logs, and view suggestion."""

import pytest

from repro.cq.evaluation import evaluate_query
from repro.gtopdb.sample import paper_database
from repro.gtopdb.schema import gtopdb_schema
from repro.views.registry import ViewRegistry
from repro.workload.logs import LogEntry, QueryLog
from repro.workload.queries import QueryGenerator
from repro.workload.suggest import coverage_of_views, suggest_views


@pytest.fixture(scope="module")
def db():
    return paper_database()


class TestQueryGenerator:
    def test_deterministic_under_seed(self, db):
        q1 = QueryGenerator(db.schema, db, seed=5).generate_many(10)
        q2 = QueryGenerator(db.schema, db, seed=5).generate_many(10)
        assert [repr(q) for q in q1] == [repr(q) for q in q2]

    def test_all_queries_safe_and_evaluable(self, db):
        generator = QueryGenerator(db.schema, db, seed=8)
        for query in generator.generate_many(25):
            query.check_safety()
            evaluate_query(query, db)  # must not raise

    def test_atom_budget_respected(self, db):
        generator = QueryGenerator(db.schema, db, seed=3, max_atoms=2)
        assert all(
            len(q.atoms) <= 2 for q in generator.generate_many(20)
        )

    def test_joins_follow_foreign_keys(self, db):
        generator = QueryGenerator(db.schema, db, seed=4, max_atoms=3,
                                   selection_probability=0.0)
        multi = [q for q in generator.generate_many(30)
                 if len(q.atoms) >= 2]
        assert multi, "expected some join queries"
        joined = [
            q for q in multi
            if set(q.atoms[0].variables()) & set(q.atoms[1].variables())
        ]
        assert joined, "expected FK-connected joins"

    def test_range_selections_generated_and_evaluable(self, db):
        from repro.cq.plan import QueryPlanner
        from repro.relational.expressions import ComparisonOp

        generator = QueryGenerator(db.schema, db, seed=11,
                                   selection_probability=0.0,
                                   range_probability=1.0)
        queries = generator.generate_many(25)
        range_ops = {ComparisonOp.LT, ComparisonOp.LE,
                     ComparisonOp.GT, ComparisonOp.GE}
        ranged = [
            q for q in queries
            if any(c.op in range_ops for c in q.comparisons)
        ]
        assert ranged, "expected range selections at probability 1.0"
        planner = QueryPlanner(db)
        pushed = 0
        for query in ranged:
            query.check_safety()
            evaluate_query(query, db, planner=planner)  # must not raise
            pushed += bool(planner.plan(query).pushed_ranges)
        assert pushed, "expected some plans with pushed ranges"

    def test_selection_constants_sampled_from_db(self, db):
        generator = QueryGenerator(db.schema, db, seed=6,
                                   selection_probability=1.0)
        queries = generator.generate_many(20)
        with_selection = [q for q in queries if q.comparisons]
        assert with_selection
        for query in with_selection:
            # Constants exist in the database, so queries are satisfiable
            # at least structurally (value occurs somewhere).
            constant = query.comparisons[0].right
            assert constant.is_constant


class TestQueryLog:
    def test_record_accepts_strings(self):
        log = QueryLog()
        log.record("Q(N) :- Family(F, N, Ty)", frequency=3)
        assert len(log) == 1
        assert log.total_frequency == 3

    def test_record_accepts_entries(self):
        from repro.cq.parser import parse_query
        entry = LogEntry(parse_query("Q(N) :- Family(F, N, Ty)"), 2)
        log = QueryLog([entry])
        assert log.total_frequency == 2

    def test_queries_in_order(self):
        log = QueryLog()
        log.record("Q(N) :- Family(F, N, Ty)")
        log.record("Q(Tx) :- FamilyIntro(F, Tx)")
        assert [q.atoms[0].relation for q in log.queries()] == [
            "Family", "FamilyIntro",
        ]


class TestSuggestViews:
    def test_suggestions_generalize_selections(self):
        log = QueryLog()
        log.record('Q(N) :- Family(F, N, Ty), Ty = "gpcr"', frequency=10)
        suggested = suggest_views(log, ViewRegistry(gtopdb_schema()), k=1)
        assert len(suggested) == 1
        view = suggested[0].view
        # The constant was generalized into a λ-parameter (like V4).
        assert view.is_parameterized

    def test_coverage_improves_with_k(self):
        log = QueryLog()
        log.record('Q(N) :- Family(F, N, Ty), Ty = "gpcr"', frequency=5)
        log.record("Q(Tx) :- FamilyIntro(F, Tx)", frequency=5)
        log.record("Q(Pn) :- Person(P, Pn, A)", frequency=5)
        registry = ViewRegistry(gtopdb_schema())
        one = suggest_views(log, registry, k=1)
        three = suggest_views(log, registry, k=3)
        assert coverage_of_views(three, log) >= coverage_of_views(one, log)

    def test_greedy_prefers_frequent_patterns(self):
        log = QueryLog()
        log.record('Q(N) :- Family(F, N, Ty), Ty = "gpcr"', frequency=100)
        log.record("Q(Pn) :- Person(P, Pn, A)", frequency=1)
        suggested = suggest_views(log, ViewRegistry(gtopdb_schema()), k=1)
        assert suggested[0].view.atoms[0].relation == "Family"

    def test_empty_log_suggests_nothing(self):
        assert suggest_views(QueryLog(), ViewRegistry(gtopdb_schema())) == []

    def test_suggested_names_deterministic(self):
        log = QueryLog()
        log.record("Q(N) :- Family(F, N, Ty)", frequency=2)
        suggested = suggest_views(log, ViewRegistry(gtopdb_schema()), k=2)
        assert [v.name for v in suggested] == [
            f"SV{i}" for i in range(len(suggested))
        ]

    def test_suggested_views_registrable(self, db):
        log = QueryLog()
        log.record('Q(N) :- Family(F, N, Ty), Ty = "gpcr"', frequency=4)
        log.record("Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)",
                   frequency=2)
        suggested = suggest_views(log, ViewRegistry(gtopdb_schema()), k=3)
        registry = ViewRegistry(gtopdb_schema(), suggested)
        assert len(registry) == len(suggested)

    def test_coverage_of_empty_log(self):
        assert coverage_of_views([], QueryLog()) == 0.0
