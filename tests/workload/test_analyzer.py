"""Tests for query-log analysis."""

import pytest

from repro.workload.analyzer import analyze_log
from repro.workload.logs import QueryLog


@pytest.fixture
def log():
    entries = QueryLog()
    entries.record('Q(N) :- Family(F, N, Ty), Ty = "gpcr"', frequency=10)
    entries.record(
        "Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)", frequency=4
    )
    entries.record('Q(Tx) :- FamilyIntro(F, Tx), F = "11"', frequency=6)
    return entries


class TestProfileBasics:
    def test_totals(self, log):
        profile = analyze_log(log)
        assert profile.total_queries == 3
        assert profile.total_frequency == 20

    def test_relation_counts_weighted(self, log):
        profile = analyze_log(log)
        assert profile.relation_counts["Family"] == 14
        assert profile.relation_counts["FamilyIntro"] == 10

    def test_top_relations(self, log):
        profile = analyze_log(log)
        assert profile.top_relations(1) == [("Family", 14)]


class TestSelections:
    def test_comparison_selection_counted(self, log):
        profile = analyze_log(log)
        # Ty = "gpcr" filters Family position 2.
        assert profile.selection_counts[("Family", 2)] == 10
        # F = "11" filters FamilyIntro position 0.
        assert profile.selection_counts[("FamilyIntro", 0)] == 6

    def test_selection_constants_recorded(self, log):
        profile = analyze_log(log)
        constants = profile.selection_constants[("Family", 2)]
        assert constants["gpcr"] == 10

    def test_inline_constant_counted(self):
        log = QueryLog()
        log.record('Q(N) :- Family("11", N, Ty)', frequency=3)
        profile = analyze_log(log)
        assert profile.selection_counts[("Family", 0)] == 3
        assert profile.selection_constants[("Family", 0)]["11"] == 3

    def test_top_selections_are_lambda_candidates(self, log):
        profile = analyze_log(log)
        assert profile.top_selections(1)[0][0] == ("Family", 2)


class TestJoins:
    def test_fk_join_counted(self, log):
        profile = analyze_log(log)
        key = tuple(sorted(((
            "Family", 0), ("FamilyIntro", 0))))
        assert profile.join_counts[key] == 4

    def test_join_orientation_canonical(self):
        log = QueryLog()
        log.record("Q(N) :- Family(F, N, Ty), FamilyIntro(F, Tx)")
        log.record("Q(Tx) :- FamilyIntro(F, Tx), Family(F, N, Ty)")
        profile = analyze_log(log)
        assert len(profile.join_counts) == 1
        assert list(profile.join_counts.values()) == [2]


class TestProjections:
    def test_head_positions_counted(self, log):
        profile = analyze_log(log)
        # N (Family position 1) is projected in queries 1 and 2: 10 + 4.
        assert profile.projection_counts[("Family", 1)] == 14


class TestDescribe:
    def test_renders_summary(self, log):
        text = analyze_log(log).describe()
        assert "3 queries, 20 executions" in text
        assert "Family" in text
        assert "λ candidates" in text

    def test_empty_log(self):
        profile = analyze_log(QueryLog())
        assert profile.total_queries == 0
        assert "0 queries" in profile.describe()
