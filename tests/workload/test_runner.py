"""Tests for batch workload execution (repro.workload.runner)."""

import pytest

from repro.citation.cache import CachedRewritingEngine
from repro.citation.generator import CitationEngine
from repro.workload.logs import QueryLog
from repro.workload.runner import run_workload

QUERIES = [
    'Q(N) :- Family(F, N, Ty), Ty = "gpcr"',
    'Q(M) :- Family(G, M, T2), T2 = "gpcr"',  # α-equivalent to the first
    "Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)",
]


@pytest.fixture
def engine(db, registry):
    return CitationEngine(db, registry)


class TestRunWorkload:
    def test_results_match_single_cites(self, db, registry, engine):
        report = run_workload(engine, QUERIES)
        assert report.queries_run == 3
        fresh = CitationEngine(db, registry)
        for query, result in zip(QUERIES, report.results):
            single = fresh.cite(query)
            assert set(result.tuples) == set(single.tuples)
            for output in single.tuples:
                assert result.tuples[output].polynomial == \
                    single.tuples[output].polynomial

    def test_alpha_equivalent_queries_hit_caches(self, engine):
        report = run_workload(engine, QUERIES)
        assert report.rewriting_hits >= 1
        assert report.plan_hits >= 1
        assert 0.0 < report.rewriting_hit_rate <= 1.0

    def test_engine_upgraded_to_cached_rewriting(self, engine):
        assert not isinstance(engine.rewriting_engine, CachedRewritingEngine)
        run_workload(engine, QUERIES[:1])
        assert isinstance(engine.rewriting_engine, CachedRewritingEngine)

    def test_second_batch_starts_warm(self, engine):
        run_workload(engine, QUERIES)
        warm = run_workload(engine, QUERIES)
        assert warm.rewriting_misses == 0
        assert warm.plan_misses == 0

    def test_query_log_with_frequencies(self, engine):
        log = QueryLog()
        log.record(QUERIES[0], frequency=5)
        log.record(QUERIES[2], frequency=2)
        distinct = run_workload(engine, log)
        assert distinct.queries_run == 2
        repeated = run_workload(engine, log, repeat_frequencies=True)
        assert repeated.queries_run == 7
        # Raw traffic is almost entirely cache hits.
        assert repeated.rewriting_hits == 7

    def test_describe_mentions_caches(self, engine):
        report = run_workload(engine, QUERIES)
        text = report.describe()
        assert "rewriting cache" in text and "plan cache" in text
