"""Tests for batch workload execution (repro.workload.runner)."""

import pytest

from repro.citation.cache import CachedRewritingEngine
from repro.citation.generator import CitationEngine
from repro.views.registry import ViewRegistry
from repro.workload.logs import QueryLog
from repro.workload.runner import WorkloadReport, run_workload

QUERIES = [
    'Q(N) :- Family(F, N, Ty), Ty = "gpcr"',
    'Q(M) :- Family(G, M, T2), T2 = "gpcr"',  # α-equivalent to the first
    "Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)",
]


@pytest.fixture
def engine(db, registry):
    return CitationEngine(db, registry)


class TestRunWorkload:
    def test_results_match_single_cites(self, db, registry, engine):
        report = run_workload(engine, QUERIES)
        assert report.queries_run == 3
        fresh = CitationEngine(db, registry)
        for query, result in zip(QUERIES, report.results):
            single = fresh.cite(query)
            assert set(result.tuples) == set(single.tuples)
            for output in single.tuples:
                assert result.tuples[output].polynomial == \
                    single.tuples[output].polynomial

    def test_alpha_equivalent_queries_hit_caches(self, engine):
        report = run_workload(engine, QUERIES)
        assert report.rewriting_hits >= 1
        assert report.plan_hits >= 1
        assert 0.0 < report.rewriting_hit_rate <= 1.0

    def test_engine_upgraded_to_cached_rewriting(self, engine):
        assert not isinstance(engine.rewriting_engine, CachedRewritingEngine)
        run_workload(engine, QUERIES[:1])
        assert isinstance(engine.rewriting_engine, CachedRewritingEngine)

    def test_second_batch_starts_warm(self, engine):
        run_workload(engine, QUERIES)
        warm = run_workload(engine, QUERIES)
        assert warm.rewriting_misses == 0
        assert warm.plan_misses == 0

    def test_query_log_with_frequencies(self, engine):
        log = QueryLog()
        log.record(QUERIES[0], frequency=5)
        log.record(QUERIES[2], frequency=2)
        distinct = run_workload(engine, log)
        assert distinct.queries_run == 2
        repeated = run_workload(engine, log, repeat_frequencies=True)
        assert repeated.queries_run == 7
        # Raw traffic is almost entirely cache hits.
        assert repeated.rewriting_hits == 7

    def test_describe_mentions_caches(self, engine):
        report = run_workload(engine, QUERIES)
        text = report.describe()
        assert "rewriting cache" in text and "plan cache" in text


class TestCounterAccounting:
    """Regression tests for the cache-accounting sweep: counters must be
    snapshotted from the engine the batch actually uses, and frequency-k
    traffic must show exactly k-1 hits per log entry."""

    def test_repeat_frequency_k_shows_k_minus_one_hits(self, db):
        # An empty registry gives exactly one (identity) rewriting per
        # query, so the per-entry arithmetic is exact: one miss on the
        # first occurrence, k-1 hits on the repeats — for the rewriting
        # cache and the plan cache alike.
        engine = CitationEngine(db, ViewRegistry(db.schema))
        log = QueryLog()
        log.record(QUERIES[0], frequency=5)
        report = run_workload(engine, log, repeat_frequencies=True)
        assert report.queries_run == 5
        assert report.rewriting_misses == 1
        assert report.rewriting_hits == 4
        assert report.plan_misses == 1
        assert report.plan_hits == 4

    def test_repeat_frequencies_with_views_show_k_minus_one_per_structure(
        self, db, registry
    ):
        engine = CitationEngine(db, registry)
        log = QueryLog()
        log.record(QUERIES[0], frequency=5)
        report = run_workload(engine, log, repeat_frequencies=True)
        assert report.rewriting_misses == 1
        assert report.rewriting_hits == 4
        # Every distinct rewriting structure misses once and hits on the
        # four repeats.  One-shot plans also flow through the shared
        # planner now — view materialization and per-token citation
        # queries — adding misses (and α-equivalence hits between views
        # sharing a body, e.g. V1/V3/V4 over Family) on this cold run.
        rewriting_plans = len(report.results[0].rewritings)
        assert report.plan_hits >= 4 * rewriting_plans
        assert report.plan_misses >= rewriting_plans
        # A second identical run is fully warm: the one-shot plans are
        # served from the engine's caches, the repeats from the planner.
        warm = run_workload(engine, log, repeat_frequencies=True)
        assert warm.plan_misses == 0
        assert warm.plan_hits == 5 * rewriting_plans

    def test_snapshot_from_pre_upgraded_engine(self, db, registry):
        # Counters accumulated *outside* the workload must not leak into
        # the report.
        engine = CitationEngine(db, registry, cache_rewritings=True)
        engine.cite(QUERIES[0])
        engine.cite(QUERIES[0])
        assert engine.rewriting_engine.hits >= 1
        report = run_workload(engine, [QUERIES[0]])
        assert report.rewriting_hits == 1
        assert report.rewriting_misses == 0

    def test_snapshot_when_upgrade_happens_in_run(self, db, registry):
        # The upgrade to a CachedRewritingEngine now happens before the
        # counters are snapshotted, so before/after always read from the
        # same object.
        engine = CitationEngine(db, registry)
        assert not isinstance(engine.rewriting_engine, CachedRewritingEngine)
        report = run_workload(engine, QUERIES)
        assert isinstance(engine.rewriting_engine, CachedRewritingEngine)
        assert report.rewriting_misses == 2  # two distinct structures
        assert report.rewriting_hits == 1  # one α-equivalent repeat


class TestDescribeOnCoarseClocks:
    def test_zero_elapsed_keeps_counts_and_cache_rates(self):
        report = WorkloadReport(
            queries_run=5,
            elapsed_seconds=0.0,
            rewriting_hits=3,
            rewriting_misses=2,
            plan_hits=6,
            plan_misses=4,
        )
        text = report.describe()
        assert "5 queries" in text
        assert "rewriting cache 3/5 hits" in text
        assert "plan cache 6/10 hits" in text
        assert "q/s" not in text

    def test_zero_elapsed_renders_subplan_counters_when_present(self):
        report = WorkloadReport(
            queries_run=2,
            elapsed_seconds=0.0,
            subplan_hits=1,
            subplan_misses=1,
        )
        assert "subplan memo 1/2 hits" in report.describe()

    def test_positive_elapsed_keeps_rate_figure(self):
        report = WorkloadReport(queries_run=4, elapsed_seconds=2.0)
        text = report.describe()
        assert "2.0 q/s" in text


class TestUnionRouting:
    """Mixed workloads: unions route through cite_union, CQs batch."""

    UNION = ('Q(N) :- Family(F, N, Ty), Ty = "gpcr"\n'
             'Q(N) :- Family(F, N, Ty), Ty = "vgic"')

    def test_results_in_workload_order(self, db, registry):
        engine = CitationEngine(db, registry)
        workload = [QUERIES[0], self.UNION, QUERIES[1]]
        report = run_workload(engine, workload)
        assert report.queries_run == 3
        assert len(report.results) == 3
        # Union result carries rows from both disjuncts; its neighbours
        # match citing the CQs individually.
        union_names = {t[0] for t in report.results[1].tuples}
        assert "Calcitonin" in union_names and "CatSper" in union_names
        solo = CitationEngine(db, registry)
        assert (
            list(report.results[0].tuples)
            == list(solo.cite(QUERIES[0]).tuples)
        )
        assert (
            list(report.results[2].tuples)
            == list(solo.cite(QUERIES[1]).tuples)
        )

    def test_per_class_counters(self, db, registry):
        from repro.cq.ucq import parse_union_query

        engine = CitationEngine(db, registry)
        report = run_workload(engine, [
            QUERIES[0],
            self.UNION,
            parse_union_query(self.UNION),
            QUERIES[1],
        ])
        assert report.per_class == {"cq": 2, "ucq": 2}
        assert "[cq=2, ucq=2]" in report.describe()

    def test_single_class_workload_omits_breakdown(self, db, registry):
        engine = CitationEngine(db, registry)
        report = run_workload(engine, [QUERIES[0]])
        assert report.per_class == {"cq": 1}
        assert "[cq=" not in report.describe()

    def test_union_only_workload(self, db, registry):
        engine = CitationEngine(db, registry)
        report = run_workload(engine, [self.UNION, self.UNION])
        assert report.per_class == {"ucq": 2}
        assert len(report.results) == 2
        assert (
            list(report.results[0].tuples)
            == list(report.results[1].tuples)
        )
