"""Unit tests for service observability (repro.service.metrics)."""

from repro.service.metrics import (
    LATENCY_BUCKET_BOUNDS_MS,
    EndpointMetrics,
    LatencyHistogram,
    ServiceMetrics,
)


class TestLatencyHistogram:
    def test_bucket_assignment(self):
        histogram = LatencyHistogram()
        histogram.observe(0.3)    # <=0.5ms
        histogram.observe(1.5)    # <=2ms
        histogram.observe(9999.0)  # overflow bucket
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 3
        assert snapshot["buckets"]["<=0.5ms"] == 1
        assert snapshot["buckets"]["<=2ms"] == 1
        assert snapshot["buckets"][">5000ms"] == 1

    def test_mean_and_max(self):
        histogram = LatencyHistogram()
        histogram.observe(10.0)
        histogram.observe(30.0)
        snapshot = histogram.snapshot()
        assert snapshot["mean_ms"] == 20.0
        assert snapshot["max_ms"] == 30.0

    def test_boundary_lands_in_lower_bucket(self):
        histogram = LatencyHistogram()
        histogram.observe(LATENCY_BUCKET_BOUNDS_MS[0])
        assert histogram.counts[0] == 1

    def test_empty_snapshot(self):
        snapshot = LatencyHistogram().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["mean_ms"] == 0.0


class TestEndpointMetrics:
    def test_per_status_counts(self):
        endpoint = EndpointMetrics()
        endpoint.observe(200, 1.0)
        endpoint.observe(200, 2.0)
        endpoint.observe(422, 0.5)
        snapshot = endpoint.snapshot()
        assert snapshot["requests"] == 3
        assert snapshot["statuses"] == {"200": 2, "422": 1}


class TestServiceMetrics:
    def test_429_counts_as_rejected(self):
        metrics = ServiceMetrics()
        metrics.observe_request("POST /cite", 429, 0.1)
        metrics.observe_request("POST /cite", 504, 0.1)
        metrics.observe_request("POST /cite", 200, 0.1)
        assert metrics.rejected == 1
        assert metrics.timeouts == 1

    def test_batching_counters(self):
        metrics = ServiceMetrics()
        metrics.observe_batch(3)
        metrics.observe_batch(1)
        snapshot = metrics.snapshot()["batching"]
        assert snapshot["batches_executed"] == 2
        assert snapshot["batched_requests"] == 4
        assert snapshot["max_batch_size"] == 3

    def test_snapshot_shape(self):
        metrics = ServiceMetrics()
        metrics.observe_request("GET /stats", 200, 5.0)
        snapshot = metrics.snapshot()
        assert snapshot["uptime_s"] >= 0
        assert "GET /stats" in snapshot["endpoints"]
        assert snapshot["endpoints"]["GET /stats"]["requests"] == 1
