"""Integration tests: the full HTTP service over a warm engine."""

import json

import pytest

from repro.citation.generator import CitationEngine
from repro.citation.policy import focused_policy
from repro.gtopdb.sample import paper_database
from repro.gtopdb.views import paper_registry
from repro.service import ServiceClient, ServiceConfig, ServiceThread

GPCR = 'Q(N) :- Family(F, N, Ty), Ty = "gpcr"'
VGIC = 'Q(N) :- Family(F, N, Ty), Ty = "vgic"'
JOIN = 'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)'
UNION = GPCR + " ; " + VGIC
EMPTY = 'Q(N) :- Family(F, N, Ty), Ty = "a", Ty = "b"'


class TestCite:
    def test_cite_matches_direct_engine(self, client):
        reply = client.cite(GPCR)
        assert reply.status == 200
        registry = paper_registry()
        engine = CitationEngine(
            paper_database(), registry, policy=focused_policy(registry)
        )
        assert reply.data == engine.cite(GPCR).citation()

    def test_include_tuples(self, client):
        reply = client.cite(GPCR, include_tuples=True)
        assert reply.status == 200
        assert reply.data["tuples"]
        for entry in reply.data["tuples"]:
            assert set(entry) == {"tuple", "citations"}

    def test_union_query(self, client):
        reply = client.cite(UNION)
        assert reply.status == 200
        assert reply.data["citations"]

    def test_sql_query(self, client):
        reply = client.cite(
            "SELECT FName FROM Family WHERE Type = 'gpcr'", sql=True
        )
        assert reply.status == 200
        # Same citations as the Datalog formulation (the rendered query
        # text differs: SQL parsing names variables by column).
        assert reply.data["citations"] == client.cite(GPCR).data["citations"]

    def test_provably_empty_is_422(self, client):
        reply = client.cite(EMPTY)
        assert reply.status == 422
        assert reply.data["error"] == "query provably returns no rows"
        assert reply.data["diagnostics"]

    def test_parse_error_is_400(self, client):
        reply = client.cite("this is not datalog")
        assert reply.status == 400
        assert "kind" in reply.data

    def test_repeat_hits_plan_cache(self, client):
        client.cite(GPCR)
        before = client.stats()["engine"]["plan_cache"]
        client.cite(GPCR)
        after = client.stats()["engine"]["plan_cache"]
        assert after["hits"] > before["hits"]
        assert after["misses"] == before["misses"]


class TestCiteBatch:
    def test_batch_matches_singles(self, client):
        reply = client.cite_batch([GPCR, VGIC, JOIN])
        assert reply.status == 200
        assert reply.data["count"] == 3
        singles = [client.cite(text).data for text in (GPCR, VGIC, JOIN)]
        assert reply.data["citations"] == singles

    def test_mixed_batch_with_union(self, client):
        reply = client.cite_batch([GPCR, UNION, VGIC])
        assert reply.status == 200
        assert reply.data["count"] == 3
        # Results come back in request order.
        assert reply.data["citations"][1] == client.cite(UNION).data

    def test_empty_member_is_422_with_index(self, client):
        reply = client.cite_batch([GPCR, EMPTY])
        assert reply.status == 422
        (bad,) = reply.data["queries"]
        assert bad["index"] == 1
        assert bad["diagnostics"]

    def test_not_a_list_is_400(self, client):
        reply = client.post("/cite-batch", {"queries": "just one"})
        assert reply.status == 400


class TestPlanAndAnalyze:
    def test_plan_returns_explain(self, client):
        reply = client.plan(GPCR)
        assert reply.status == 200
        assert reply.data["explain"].startswith("plan for ")
        assert "estimated cost" in reply.data["explain"]

    def test_plan_union(self, client):
        reply = client.plan(UNION)
        assert reply.status == 200
        assert reply.data["explain"]

    def test_plan_of_empty_query_is_422(self, client):
        reply = client.plan(EMPTY)
        assert reply.status == 422
        assert reply.data["explain"]  # the plan still renders

    def test_analyze_clean_query(self, client):
        reply = client.analyze(GPCR)
        assert reply.status == 200
        assert reply.data["provably_empty"] is False

    def test_analyze_empty_query(self, client):
        reply = client.analyze(EMPTY)
        assert reply.status == 422
        assert reply.data["provably_empty"] is True
        codes = {d["code"] for d in reply.data["diagnostics"]}
        assert any(code.startswith("QA2") for code in codes)


class TestMutations:
    def test_insert_then_cite_sees_row(self, client):
        before = client.cite(GPCR, include_tuples=True).data["tuples"]
        reply = client.insert("Family", [["F9999", "ServiceFam", "gpcr"]])
        assert reply.status == 200
        assert reply.data["inserted"] == 1
        after = client.cite(GPCR, include_tuples=True).data["tuples"]
        names = {tuple(entry["tuple"]) for entry in after}
        assert ("ServiceFam",) in names
        assert len(after) == len(before) + 1

    def test_delete_restores(self, client):
        client.insert("Family", [["F9999", "ServiceFam", "gpcr"]])
        reply = client.delete_rows(
            "Family", [["F9999", "ServiceFam", "gpcr"]]
        )
        assert reply.status == 200
        assert reply.data["deleted"] == 1
        after = client.cite(GPCR, include_tuples=True).data["tuples"]
        names = {tuple(entry["tuple"]) for entry in after}
        assert ("ServiceFam",) not in names

    def test_mutation_bumps_stats_version(self, client):
        version = client.stats()["engine"]["stats_version"]
        reply = client.insert("Family", [["F9998", "X", "gpcr"]])
        assert reply.data["stats_version"] > version

    def test_warm_caches_survive_mutation(self, client):
        """Graceful invalidation: plan-cache entries are not dropped
        wholesale — the version-keyed cache keeps serving structurally
        unaffected queries."""
        client.cite(GPCR)
        client.insert("Ligand2Family", [["L9999", "F0001"]])
        size_after = client.stats()["engine"]["plan_cache"]["size"]
        assert size_after > 0  # not flushed

    def test_unknown_relation_is_400(self, client):
        reply = client.insert("Nonexistent", [["x"]])
        assert reply.status == 400

    def test_bad_rows_are_400(self, client):
        reply = client.post("/insert", {"relation": "Family", "rows": []})
        assert reply.status == 400
        reply = client.post(
            "/insert", {"relation": "Family", "rows": ["not-a-list"]}
        )
        assert reply.status == 400


class TestStatsAndHealth:
    def test_healthz(self, client):
        assert client.get("/healthz").data == {"status": "ok"}

    def test_stats_shape(self, client):
        client.cite(GPCR)
        stats = client.stats()
        assert set(stats) == {
            "service", "admission", "engine", "shipping",
        }
        engine = stats["engine"]
        for cache in ("plan_cache", "rewriting_cache", "subplan_memo"):
            assert {"hits", "misses", "evictions"} <= set(engine[cache])
        assert "reserved" in engine["subplan_memo"]
        service = stats["service"]
        assert "POST /cite" in service["endpoints"]
        latency = service["endpoints"]["POST /cite"]["latency"]
        assert latency["count"] >= 1
        assert latency["buckets"]

    def test_unknown_endpoint_404_lists_routes(self, client):
        reply = client.get("/nope")
        assert reply.status == 404
        assert "POST /cite" in reply.data["endpoints"]

    def test_wrong_method_405(self, client):
        reply = client.request("GET", "/cite")
        assert reply.status == 405


class TestKeepAlive:
    def test_many_requests_one_connection(self, service):
        client = ServiceClient(service.base_url)
        try:
            for __ in range(5):
                assert client.cite(GPCR).status == 200
            stats = client.stats()
            # All traffic rode a single accepted connection.
            assert stats["service"]["connections_accepted"] == 1
        finally:
            client.close()


class TestShardedByteIdentity:
    def test_sharded_equals_serial_over_http(self):
        """The acceptance gate: responses are byte-identical whether the
        engine runs serial or hash-partitioned storage."""
        registry = paper_registry()
        serial_db = paper_database()
        sharded_db = paper_database()
        sharded_db.reshard(4)
        bodies = {}
        for label, db in (("serial", serial_db), ("sharded", sharded_db)):
            engine = CitationEngine(
                db, registry, policy=focused_policy(registry)
            )
            with ServiceThread(engine) as handle:
                client = ServiceClient(handle.base_url)
                try:
                    replies = [
                        client.cite(GPCR, include_tuples=True),
                        client.cite(JOIN),
                        client.cite(UNION),
                        client.cite_batch([GPCR, VGIC]),
                        client.plan(GPCR),
                    ]
                    assert all(r.status == 200 for r in replies)
                    bodies[label] = [r.body for r in replies]
                finally:
                    client.close()
        assert bodies["serial"] == bodies["sharded"]


class TestReplay:
    def test_replay_workload_reports_cache_deltas(self, service):
        from repro.workload import replay_workload

        report = replay_workload(
            service.base_url, [GPCR, VGIC, GPCR, GPCR]
        )
        assert report.ok_count == 4
        assert report.error_count == 0
        assert report.statuses == {200: 4}
        # The repeats hit the warm plan cache across HTTP requests.
        assert report.plan_hits >= 2
        text = report.describe()
        assert "4 requests" in text
        assert "plan" in text

    def test_replay_cli(self, service, tmp_path, capsys):
        from repro.cli import main

        queries = tmp_path / "queries.txt"
        queries.write_text(
            "# comment\n\n" + GPCR + "\n" + VGIC + "\n"
        )
        code = main([
            "replay", str(queries), "--url", service.base_url,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 requests" in out


class TestServiceThreadLifecycle:
    def test_draining_health_and_clean_stop(self, fresh_engine):
        handle = ServiceThread(fresh_engine).start()
        client = ServiceClient(handle.base_url)
        try:
            assert client.cite(GPCR).status == 200
        finally:
            client.close()
        handle.stop()
        # Idempotent stop.
        handle.stop()

    def test_startup_failure_surfaces(self, fresh_engine):
        # An unresolvable bind host fails fast; start() must raise.
        config = ServiceConfig(host="host.invalid", port=0)
        with pytest.raises(RuntimeError, match="failed to start"):
            ServiceThread(fresh_engine, config).start()

    def test_responses_are_deterministic_json(self, client):
        first = client.cite(GPCR)
        second = client.cite(GPCR)
        assert first.body == second.body
        assert json.loads(first.body) == first.data
