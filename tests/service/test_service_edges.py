"""Robustness edge cases: malformed input, saturation, timeouts, and
the mutation-vs-in-flight-read consistency guarantee."""

import threading
import time

import pytest

from repro.citation.generator import CitationEngine
from repro.citation.policy import focused_policy
from repro.gtopdb.sample import paper_database
from repro.gtopdb.views import paper_registry
from repro.service import ServiceClient, ServiceConfig, ServiceThread

GPCR = 'Q(N) :- Family(F, N, Ty), Ty = "gpcr"'


def fresh_engine():
    registry = paper_registry()
    return CitationEngine(
        paper_database(), registry, policy=focused_policy(registry)
    )


class TestMalformedInput:
    def test_malformed_json_is_400(self, client):
        reply = client.request("POST", "/cite", b"{not json")
        assert reply.status == 400
        assert "not valid JSON" in reply.data["error"]

    def test_non_object_body_is_400(self, client):
        reply = client.post("/cite", ["a", "list"])
        assert reply.status == 400
        assert "JSON object" in reply.data["error"]

    def test_missing_query_is_400(self, client):
        reply = client.post("/cite", {"nope": 1})
        assert reply.status == 400

    def test_blank_query_is_400(self, client):
        reply = client.post("/cite", {"query": "   "})
        assert reply.status == 400

    def test_protocol_errors_are_counted(self, service, client):
        client.request("POST", "/cite", b"{broken")
        stats = client.stats()
        assert stats["service"]["protocol_errors"] >= 1


class TestOversizedRequests:
    def test_oversize_is_413_then_connection_recovers(self, client):
        reply = client.request("POST", "/cite", b"x" * 2_000_000)
        assert reply.status == 413
        assert "exceeds" in reply.data["error"]
        # The client reconnects transparently and traffic continues.
        assert client.cite(GPCR).status == 200

    def test_custom_body_limit(self):
        config = ServiceConfig(port=0, max_body_bytes=64)
        with ServiceThread(fresh_engine(), config) as handle:
            client = ServiceClient(handle.base_url)
            try:
                reply = client.post("/cite", {"query": "Q" * 200})
                assert reply.status == 413
            finally:
                client.close()


class TestTimeouts:
    def test_timeout_mid_plan_is_504(self):
        engine = fresh_engine()
        original = engine.cite_batch

        def slow_cite_batch(queries, *args, **kwargs):
            time.sleep(0.3)
            return original(queries, *args, **kwargs)

        engine.cite_batch = slow_cite_batch
        config = ServiceConfig(port=0, request_timeout_s=0.05)
        with ServiceThread(engine, config) as handle:
            client = ServiceClient(handle.base_url)
            try:
                reply = client.cite(GPCR)
                assert reply.status == 504
                assert "timed out" in reply.data["error"]
                stats = client.stats()
                assert stats["service"]["timeouts"] >= 1
            finally:
                client.close()

    def test_work_completes_server_side_after_504(self):
        """The timed-out job still runs to completion on the lane, so
        the caches it warms benefit the next request."""
        engine = fresh_engine()
        original = engine.cite_batch
        calls = []

        def slow_once(queries, *args, **kwargs):
            calls.append(len(queries))
            if len(calls) == 1:
                time.sleep(0.2)
            return original(queries, *args, **kwargs)

        engine.cite_batch = slow_once
        config = ServiceConfig(port=0, request_timeout_s=0.05)
        with ServiceThread(engine, config) as handle:
            client = ServiceClient(handle.base_url)
            try:
                assert client.cite(GPCR).status == 504
                # Give the abandoned job a beat to finish on the lane.
                time.sleep(0.3)
                reply = client.cite(GPCR)
                assert reply.status == 200
            finally:
                client.close()
        assert len(calls) == 2  # first job ran to completion


class TestSaturation:
    def test_429_with_retry_after_under_load(self):
        engine = fresh_engine()
        original = engine.cite_batch
        release = threading.Event()
        occupied = threading.Event()

        def blocking_cite_batch(queries, *args, **kwargs):
            occupied.set()
            release.wait(30.0)
            return original(queries, *args, **kwargs)

        engine.cite_batch = blocking_cite_batch
        config = ServiceConfig(
            port=0, max_pending=1, request_timeout_s=10.0,
            retry_after_s=2.0,
        )
        with ServiceThread(engine, config) as handle:
            first_status = []

            def occupy():
                occupier = ServiceClient(handle.base_url)
                try:
                    first_status.append(occupier.cite(GPCR).status)
                finally:
                    occupier.close()

            thread = threading.Thread(target=occupy)
            thread.start()
            client = ServiceClient(handle.base_url)
            try:
                # Wait until the slow job actually occupies the lane;
                # the occupier's analyze also primed the service-side
                # analysis cache, so the probe goes straight to cite
                # admission — and bounces off the full queue.
                assert occupied.wait(5.0)
                reply = client.request("POST", "/cite",
                                       {"query": GPCR})
                assert reply.status == 429
                assert reply.headers.get("retry-after") == "2"
                stats = client.stats()
                assert stats["admission"]["rejected"] >= 1
                assert stats["admission"]["max_pending"] == 1
            finally:
                release.set()
                thread.join(timeout=5.0)
                client.close()
            assert first_status == [200]


class TestInvalidationRace:
    def test_insert_during_inflight_cite_keeps_snapshots_consistent(self):
        """A cite admitted before an insert must see the pre-insert
        database; one admitted after must see the post-insert state.
        The single engine lane totally orders the two."""
        engine = fresh_engine()
        original = engine.cite_batch
        started = threading.Event()

        def slow_cite_batch(queries, *args, **kwargs):
            started.set()
            time.sleep(0.15)
            return original(queries, *args, **kwargs)

        engine.cite_batch = slow_cite_batch
        config = ServiceConfig(port=0, batch_linger_s=0)
        with ServiceThread(engine, config) as handle:
            results = {}

            def cite_inflight():
                reader = ServiceClient(handle.base_url)
                try:
                    reply = reader.cite(GPCR, include_tuples=True)
                    results["inflight"] = reply
                finally:
                    reader.close()

            thread = threading.Thread(target=cite_inflight)
            thread.start()
            writer = ServiceClient(handle.base_url)
            try:
                # Insert while the first citation is mid-execution.
                assert started.wait(5.0)
                reply = writer.insert(
                    "Family", [["F9999", "RaceFam", "gpcr"]]
                )
                assert reply.status == 200
                thread.join(timeout=10.0)
                post = writer.cite(GPCR, include_tuples=True)
            finally:
                writer.close()

        inflight_names = {
            tuple(entry["tuple"])
            for entry in results["inflight"].data["tuples"]
        }
        post_names = {
            tuple(entry["tuple"]) for entry in post.data["tuples"]
        }
        # The in-flight citation saw the pre-insert snapshot…
        assert ("RaceFam",) not in inflight_names
        # …and the follow-up sees the new row.
        assert ("RaceFam",) in post_names


class TestCrossClientBatching:
    def test_concurrent_cites_coalesce(self):
        """Concurrent single-query clients share one engine batch —
        visible as batches_executed < requests in /stats."""
        config = ServiceConfig(port=0, batch_linger_s=0.1)
        clients = 4
        with ServiceThread(fresh_engine(), config) as handle:
            barrier = threading.Barrier(clients)
            statuses = []

            def one_client():
                client = ServiceClient(handle.base_url)
                try:
                    barrier.wait(5.0)
                    statuses.append(client.cite(GPCR).status)
                finally:
                    client.close()

            threads = [
                threading.Thread(target=one_client)
                for __ in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=15.0)
            observer = ServiceClient(handle.base_url)
            try:
                batching = observer.stats()["service"]["batching"]
            finally:
                observer.close()
        assert statuses == [200] * clients
        assert batching["batched_requests"] == clients
        # At least some coalescing happened: fewer engine batches than
        # requests, and one batch carried multiple clients' queries.
        assert batching["batches_executed"] < clients
        assert batching["max_batch_size"] >= 2


class TestDrain:
    def test_draining_service_rejects_new_work_and_exits(self):
        engine = fresh_engine()
        handle = ServiceThread(engine).start()
        client = ServiceClient(handle.base_url)
        try:
            assert client.cite(GPCR).status == 200
        finally:
            client.close()
        handle.stop()
        # The lane is stopped with the service: nothing leaks.
        assert handle.service is not None
        assert handle.service.lane.outstanding == 0

    def test_graceful_stop_completes_inflight_request(self):
        engine = fresh_engine()
        original = engine.cite_batch

        def slow_cite_batch(queries, *args, **kwargs):
            time.sleep(0.2)
            return original(queries, *args, **kwargs)

        engine.cite_batch = slow_cite_batch
        handle = ServiceThread(engine).start()
        results = {}

        def cite():
            client = ServiceClient(handle.base_url)
            try:
                results["reply"] = client.cite(GPCR)
            finally:
                client.close()

        thread = threading.Thread(target=cite)
        thread.start()
        time.sleep(0.05)  # request is in flight
        handle.stop()     # graceful drain waits for it
        thread.join(timeout=10.0)
        assert results["reply"].status == 200


class TestLaneValidationThroughConfig:
    def test_bad_config_bounds_fail_fast(self):
        thread = ServiceThread(
            fresh_engine(), ServiceConfig(port=0, max_pending=0)
        )
        with pytest.raises(RuntimeError, match="failed to start"):
            thread.start()
