"""Unit tests for the engine lane (repro.service.batcher).

A stub engine stands in for :class:`CitationEngine` — the lane only
needs ``acite_batch`` — so coalescing, admission control, ordering, and
timeout semantics are tested deterministically without citation work.
"""

import asyncio

import pytest

from repro.service.batcher import (
    AdmissionFull,
    EngineLane,
    LaneClosed,
    wait_bounded,
)


class StubEngine:
    """Records every batch; returns the queries themselves as results."""

    def __init__(self, delay_s: float = 0.0):
        self.batches: list[list[str]] = []
        self.calls: list[str] = []
        self.delay_s = delay_s

    async def acite_batch(self, queries):
        self.batches.append(list(queries))
        if self.delay_s:
            await asyncio.sleep(self.delay_s)
        return [f"cited:{query}" for query in queries]


class TestCoalescing:
    def test_queued_cites_coalesce_into_one_batch(self):
        async def go():
            engine = StubEngine()
            lane = EngineLane(engine, batch_linger_s=0)
            futures = [lane.submit_cite(f"q{i}") for i in range(4)]
            lane.start()
            results = await asyncio.gather(*futures)
            await lane.stop()
            return engine.batches, results

        batches, results = asyncio.run(go())
        assert batches == [["q0", "q1", "q2", "q3"]]
        assert results == [f"cited:q{i}" for i in range(4)]

    def test_max_batch_splits(self):
        async def go():
            engine = StubEngine()
            lane = EngineLane(engine, max_batch=2, batch_linger_s=0)
            futures = [lane.submit_cite(f"q{i}") for i in range(5)]
            lane.start()
            await asyncio.gather(*futures)
            await lane.stop()
            return engine.batches

        batches = asyncio.run(go())
        assert [len(batch) for batch in batches] == [2, 2, 1]

    def test_call_job_breaks_the_batch(self):
        async def go():
            engine = StubEngine()
            lane = EngineLane(engine, batch_linger_s=0)
            order = []
            first = lane.submit_cite("a")
            call = lane.submit(lambda: order.append("call") or "mid")
            second = lane.submit_cite("b")
            lane.start()
            results = await asyncio.gather(first, call, second)
            await lane.stop()
            return engine.batches, results

        batches, results = asyncio.run(go())
        # The exclusive job separates the two cites: two batches of one.
        assert batches == [["a"], ["b"]]
        assert results == ["cited:a", "mid", "cited:b"]

    def test_linger_waits_for_concurrent_arrivals(self):
        async def go():
            engine = StubEngine()
            lane = EngineLane(engine, batch_linger_s=0.05)
            lane.start()
            first = lane.submit_cite("early")
            # Arrives while the lane lingers on the first job.
            await asyncio.sleep(0.01)
            second = lane.submit_cite("late")
            await asyncio.gather(first, second)
            await lane.stop()
            return engine.batches

        assert asyncio.run(go()) == [["early", "late"]]


class TestAdmission:
    def test_admission_full(self):
        async def go():
            engine = StubEngine(delay_s=0.2)
            lane = EngineLane(engine, max_pending=2, batch_linger_s=0)
            lane.start()
            first = lane.submit_cite("a")
            second = lane.submit_cite("b")
            with pytest.raises(AdmissionFull):
                lane.submit_cite("c")
            assert lane.outstanding == 2
            await asyncio.gather(first, second)
            # Completion frees admission slots again.
            assert lane.outstanding == 0
            third = lane.submit_cite("c")
            await third
            await lane.stop()

        asyncio.run(go())

    def test_closed_lane_rejects(self):
        async def go():
            lane = EngineLane(StubEngine(), batch_linger_s=0)
            lane.start()
            await lane.stop()
            with pytest.raises(LaneClosed):
                lane.submit_cite("q")
            with pytest.raises(LaneClosed):
                lane.submit(lambda: None)

        asyncio.run(go())

    def test_stop_drains_admitted_jobs(self):
        async def go():
            engine = StubEngine(delay_s=0.02)
            lane = EngineLane(engine, batch_linger_s=0)
            futures = [lane.submit_cite(f"q{i}") for i in range(3)]
            lane.start()
            await lane.stop()
            return await asyncio.gather(*futures)

        assert asyncio.run(go()) == [f"cited:q{i}" for i in range(3)]


class TestErrorsAndTimeouts:
    def test_call_exception_forwarded(self):
        async def go():
            lane = EngineLane(StubEngine(), batch_linger_s=0)
            lane.start()

            def boom():
                raise ValueError("nope")

            with pytest.raises(ValueError, match="nope"):
                await lane.submit(boom)
            await lane.stop()

        asyncio.run(go())

    def test_batch_exception_forwarded_to_every_member(self):
        class FailingEngine(StubEngine):
            async def acite_batch(self, queries):
                raise RuntimeError("engine died")

        async def go():
            lane = EngineLane(FailingEngine(), batch_linger_s=0)
            first = lane.submit_cite("a")
            second = lane.submit_cite("b")
            lane.start()
            outcomes = await asyncio.gather(
                first, second, return_exceptions=True
            )
            await lane.stop()
            return outcomes

        outcomes = asyncio.run(go())
        assert all(
            isinstance(outcome, RuntimeError) for outcome in outcomes
        )

    def test_timeout_abandons_waiter_not_job(self):
        async def go():
            engine = StubEngine(delay_s=0.1)
            lane = EngineLane(engine, batch_linger_s=0)
            lane.start()
            future = lane.submit_cite("slow")
            with pytest.raises(asyncio.TimeoutError):
                await wait_bounded(future, 0.01)
            # The job still completes on the lane.
            result = await wait_bounded(future, 5.0)
            await lane.stop()
            return result

        assert asyncio.run(go()) == "cited:slow"

    def test_wait_bounded_without_timeout(self):
        async def go():
            lane = EngineLane(StubEngine(), batch_linger_s=0)
            lane.start()
            result = await wait_bounded(lane.submit_cite("q"), None)
            await lane.stop()
            return result

        assert asyncio.run(go()) == "cited:q"


class TestValidation:
    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            EngineLane(StubEngine(), max_pending=0)
        with pytest.raises(ValueError):
            EngineLane(StubEngine(), max_batch=0)
