"""Fixtures for the citation-service tests.

Service tests get *fresh* engines (not the session-scoped read-only
ones): mutation endpoints and cache-counter assertions need private
state, and every service binds an ephemeral port so parallel runs never
collide.
"""

import pytest

from repro.citation.generator import CitationEngine
from repro.citation.policy import focused_policy
from repro.gtopdb.sample import paper_database
from repro.gtopdb.views import paper_registry
from repro.service import ServiceClient, ServiceThread


@pytest.fixture
def fresh_engine():
    registry = paper_registry()
    return CitationEngine(
        paper_database(), registry, policy=focused_policy(registry)
    )


@pytest.fixture
def service(fresh_engine):
    with ServiceThread(fresh_engine) as handle:
        yield handle


@pytest.fixture
def client(service):
    handle = ServiceClient(service.base_url)
    yield handle
    handle.close()
