"""Unit tests for the minimal HTTP/1.1 framing (repro.service.protocol)."""

import asyncio
import json

import pytest

from repro.service.protocol import (
    HttpRequest,
    PayloadTooLarge,
    ProtocolError,
    read_request,
    render_response,
)


def parse(raw: bytes, max_body: int = 1_000_000):
    """Feed raw bytes to a StreamReader and parse one request."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, max_body)

    return asyncio.run(go())


class TestReadRequest:
    def test_simple_get(self):
        request = parse(b"GET /stats HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/stats"
        assert request.body == b""
        assert request.keep_alive

    def test_body_framed_by_content_length(self):
        body = b'{"query": "Q"}'
        raw = (
            b"POST /cite HTTP/1.1\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n"
            + body
        )
        request = parse(raw)
        assert request.body == body
        assert request.json() == {"query": "Q"}

    def test_clean_close_returns_none(self):
        assert parse(b"") is None

    def test_path_strips_query_string(self):
        request = parse(b"GET /stats?verbose=1 HTTP/1.1\r\n\r\n")
        assert request.target == "/stats?verbose=1"
        assert request.path == "/stats"

    def test_connection_close_header(self):
        request = parse(
            b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        assert not request.keep_alive

    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError):
            parse(b"NONSENSE\r\n\r\n")

    def test_http2_rejected(self):
        with pytest.raises(ProtocolError):
            parse(b"GET / HTTP/2.0\r\n\r\n")

    def test_header_without_colon(self):
        with pytest.raises(ProtocolError):
            parse(b"GET / HTTP/1.1\r\nbadheader\r\n\r\n")

    def test_too_many_headers(self):
        headers = b"".join(
            b"X-H%d: v\r\n" % i for i in range(150)
        )
        with pytest.raises(ProtocolError, match="too many headers"):
            parse(b"GET / HTTP/1.1\r\n" + headers + b"\r\n")

    def test_bad_content_length(self):
        with pytest.raises(ProtocolError, match="Content-Length"):
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")

    def test_negative_content_length(self):
        with pytest.raises(ProtocolError, match="Content-Length"):
            parse(b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n")

    def test_chunked_encoding_rejected(self):
        with pytest.raises(ProtocolError, match="chunked"):
            parse(
                b"POST / HTTP/1.1\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
            )

    def test_oversized_body_refused_and_drained(self):
        body = b"x" * 2048
        raw = (
            b"POST /cite HTTP/1.1\r\n"
            b"Content-Length: 2048\r\n\r\n" + body
        )

        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            with pytest.raises(PayloadTooLarge):
                await read_request(reader, max_body_bytes=1024)
            # The oversized body was drained so the connection could
            # still deliver the 413 and carry a follow-up request.
            return await reader.read()

        assert asyncio.run(go()) == b""

    def test_truncated_body(self):
        with pytest.raises(ProtocolError, match="mid-body"):
            parse(
                b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort"
            )

    def test_invalid_json_body(self):
        request = HttpRequest(method="POST", target="/cite",
                              body=b"{nope")
        with pytest.raises(ProtocolError, match="not valid JSON"):
            request.json()


class TestRenderResponse:
    def test_status_line_and_framing(self):
        raw = render_response(200, {"ok": True})
        head, __, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert json.loads(body) == {"ok": True}
        assert f"Content-Length: {len(body)}".encode() in head

    def test_deterministic_bytes(self):
        payload = {"b": 2, "a": [1, {"z": 0, "y": 9}]}
        assert render_response(200, payload) == \
            render_response(200, payload)

    def test_connection_close(self):
        raw = render_response(400, {"error": "x"}, keep_alive=False)
        assert b"Connection: close" in raw

    def test_extra_headers(self):
        raw = render_response(
            429, {"error": "busy"},
            extra_headers={"Retry-After": "1"},
        )
        assert b"Retry-After: 1\r\n" in raw

    def test_unknown_status_reason(self):
        assert render_response(599, None).startswith(
            b"HTTP/1.1 599 Unknown"
        )
