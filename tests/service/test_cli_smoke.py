"""End-to-end smoke test of ``repro serve`` as a real process.

Mirrors the CI service-smoke leg: start the server, replay a client
workload against it, check the cache counters moved, then SIGTERM and
assert a graceful zero exit.
"""

import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.service import ServiceClient

QUERIES = [
    'Q(N) :- Family(F, N, Ty), Ty = "gpcr"',
    'Q(N) :- Family(F, N, Ty), Ty = "vgic"',
    'Q(N) :- Family(F, N, Ty), Ty = "gpcr"',
]


@pytest.fixture
def project(tmp_path):
    path = tmp_path / "demo.json"
    assert main(["init-demo", str(path)]) == 0
    return path


def start_server(project, *extra):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--db", str(project), "--port", "0", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    line = process.stdout.readline()
    match = re.search(r"http://[0-9.]+:(\d+)", line)
    assert match, f"no URL in startup line: {line!r}"
    return process, match.group(0)


class TestServeSmoke:
    def test_serve_replay_sigterm(self, project, tmp_path, capsys):
        process, url = start_server(project)
        try:
            queries = tmp_path / "queries.txt"
            queries.write_text("\n".join(QUERIES) + "\n")
            assert main(["replay", str(queries), "--url", url]) == 0
            out = capsys.readouterr().out
            assert "3 requests" in out
            assert "[200=3]" in out

            client = ServiceClient(url)
            try:
                stats = client.stats()
            finally:
                client.close()
            # The repeated query hit the warm plan cache over HTTP.
            assert stats["engine"]["plan_cache"]["hits"] > 0
        finally:
            process.send_signal(signal.SIGTERM)
            code = process.wait(timeout=15)
        assert code == 0  # graceful drain, clean exit

    def test_serve_with_shards(self, project):
        process, url = start_server(project, "--shards", "3")
        try:
            client = ServiceClient(url)
            try:
                client.wait_ready()
                stats = client.stats()
                assert stats["engine"]["shards"] == 3
                reply = client.cite(QUERIES[0])
                assert reply.status == 200
            finally:
                client.close()
        finally:
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=15) == 0


class TestReplayCLIErrors:
    def test_replay_unreachable_server(self, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text(QUERIES[0] + "\n")
        code = main([
            "replay", str(queries),
            "--url", "http://127.0.0.1:9",  # discard port: refused
            "--timeout", "1",
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err


def test_serve_registered_in_parser():
    from repro.cli import build_parser

    parser = build_parser()
    namespace = parser.parse_args([
        "serve", "--db", "x.json", "--shards", "4",
        "--max-pending", "8", "--max-batch", "4",
    ])
    assert namespace.shards == 4
    assert namespace.max_pending == 8
    namespace = parser.parse_args([
        "replay", "q.txt", "--url", "http://h:1",
    ])
    assert namespace.url == "http://h:1"
