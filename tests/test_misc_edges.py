"""Remaining edge cases across modules."""


from repro.citation.generator import CitationEngine
from repro.gtopdb.sample import paper_database
from repro.gtopdb.views import nested_family_citation
from repro.workload.queries import QueryGenerator


class TestNestedCitationFunction:
    def test_empty_rows_fall_back_to_parameter(self):
        fn = nested_family_citation(
            "Contributors", group_index=1, member_index=2, outer_index=0
        )
        record = fn([], ("Type", "Name", "Committee"), {"Ty": "gpcr"})
        assert record["Type"] == "gpcr"
        assert record["Contributors"] == []

    def test_empty_rows_no_params(self):
        fn = nested_family_citation(
            "Contributors", group_index=1, member_index=2, outer_index=0
        )
        record = fn([], ("Type", "Name", "Committee"), {})
        assert record == {"Contributors": []}

    def test_members_deduplicated_and_sorted(self):
        fn = nested_family_citation(
            "Contributors", group_index=0, member_index=1, outer_index=0
        )
        rows = [("fam", "Zoe"), ("fam", "Alice"), ("fam", "Zoe")]
        record = fn(rows, ("Name", "Member"), {})
        assert record["Contributors"][0]["Committee"] == ["Alice", "Zoe"]


class TestGeneratorWithoutDatabase:
    def test_generation_without_sampled_constants(self):
        db = paper_database()
        generator = QueryGenerator(db.schema, db=None, seed=1,
                                   selection_probability=1.0)
        queries = generator.generate_many(10)
        # Without a database to sample from, no selections are added.
        assert all(not q.comparisons for q in queries)
        for query in queries:
            query.check_safety()


class TestEngineLimits:
    def test_max_rewritings_limits_citation_breadth(self, db, registry):
        from repro.citation.policy import comprehensive_policy
        full = CitationEngine(db, registry,
                              policy=comprehensive_policy())
        capped = CitationEngine(db, registry,
                                policy=comprehensive_policy(),
                                max_rewritings=1)
        query = ('Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), '
                 'Ty = "gpcr"')
        full_result = full.cite(query)
        capped_result = capped.cite(query)
        assert len(capped_result.rewritings) == 1
        assert len(full_result.rewritings) == 4
        # Same answers, narrower provenance.
        assert set(full_result.tuples) == set(capped_result.tuples)

    def test_include_partial_false_engine(self, db, registry):
        engine = CitationEngine(db, registry, include_partial=False)
        result = engine.cite(
            "Q(N, Pn) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A)"
        )
        # Only partial rewritings exist for this query: none usable.
        assert result.rewritings == ()
        assert result.tuples == {}
        assert result.records == result.database_citation


class TestRenameApartStability:
    def test_rename_apart_is_deterministic(self):
        from repro.cq.parser import parse_query
        query = parse_query("Q(A) :- R(A, B), S(B, C)")
        first, __ = query.rename_apart(["A", "B"])
        second, __ = query.rename_apart(["A", "B"])
        assert repr(first) == repr(second)
