"""Documentation front-door guards.

The CI docs job runs every example and the link checker on each push;
these tests keep the same guarantees in the tier-1 suite so docs drift
fails fast locally:

- README.md exists and covers the CLI commands;
- every example script is documented in docs/examples.md and runnable
  as ``python -m examples.<name>``;
- relative links across the Markdown front door resolve;
- every public module and example is reachable from docs/index.md
  (the check_doc_links ``--coverage`` contract).
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = [
    "README.md",
    "ARCHITECTURE.md",
    "docs/index.md",
    "docs/service.md",
    "docs/examples.md",
] + sorted(
    path.relative_to(REPO).as_posix()
    for path in (REPO / "docs" / "examples").glob("*.md")
)
EXAMPLES = sorted(
    path.stem
    for path in (REPO / "examples").glob("*.py")
    if path.stem != "__init__"
)


class TestReadme:
    def test_exists_and_names_the_paper(self):
        text = (REPO / "README.md").read_text(encoding="utf-8")
        assert "Fine-Grained Data Citation" in text
        assert "CIDR" in text

    def test_documents_every_cli_command(self):
        from repro.cli import build_parser

        text = (REPO / "README.md").read_text(encoding="utf-8")
        parser = build_parser()
        subparsers = next(
            action for action in parser._actions
            if hasattr(action, "choices") and action.choices
        )
        for command in subparsers.choices:
            assert command in text, f"README does not mention {command!r}"

    def test_links_to_architecture_and_examples(self):
        text = (REPO / "README.md").read_text(encoding="utf-8")
        assert "ARCHITECTURE.md" in text
        assert "docs/examples.md" in text


class TestExamplesDoc:
    def test_every_example_has_a_paragraph(self):
        text = (REPO / "docs" / "examples.md").read_text(encoding="utf-8")
        for name in EXAMPLES:
            assert f"{name}.py" in text, (
                f"examples/{name}.py is not documented in docs/examples.md"
            )

    def test_no_stale_example_entries(self):
        text = (REPO / "docs" / "examples.md").read_text(encoding="utf-8")
        import re

        documented = set(re.findall(r"\[`([a-z_]+)\.py`\]", text))
        assert documented == set(EXAMPLES)

    def test_every_example_has_a_subsystem_paragraph(self):
        """The hub links out to per-subsystem pages; every example must
        carry a real ``## [`name.py`]`` walk-through on one of them."""
        import re

        headed = set()
        for page in (REPO / "docs" / "examples").glob("*.md"):
            text = page.read_text(encoding="utf-8")
            headed.update(re.findall(r"^## \[`([a-z_]+)\.py`\]", text, re.M))
        assert headed == set(EXAMPLES)


class TestLinks:
    @pytest.mark.parametrize("doc", DOC_FILES)
    def test_relative_links_resolve(self, doc):
        sys.path.insert(0, str(REPO / "tools"))
        try:
            from check_doc_links import broken_links
        finally:
            sys.path.pop(0)
        assert broken_links(REPO / doc) == []


class TestCoverage:
    def test_front_door_reaches_every_module_and_example(self):
        """check_doc_links --coverage: every public module under
        src/repro and every example script must be mentioned on some
        page reachable from docs/index.md."""
        sys.path.insert(0, str(REPO / "tools"))
        try:
            from check_doc_links import coverage_orphans
        finally:
            sys.path.pop(0)
        assert coverage_orphans(REPO) == []

    def test_front_door_walk_spans_the_doc_set(self):
        sys.path.insert(0, str(REPO / "tools"))
        try:
            from check_doc_links import reachable_pages
        finally:
            sys.path.pop(0)
        pages = {
            page.relative_to(REPO).as_posix()
            for page in reachable_pages(REPO / "docs" / "index.md")
        }
        for doc in DOC_FILES:
            assert doc in pages, f"{doc} is unreachable from docs/index.md"


class TestExamplesRun:
    def test_quickstart_runs_as_module(self):
        """End-to-end smoke for the documented invocation; CI's docs job
        runs all six examples, tier-1 keeps the fastest one."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, "-m", "examples.quickstart"],
            cwd=REPO,
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "rendered citation" in proc.stdout
