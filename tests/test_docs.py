"""Documentation front-door guards.

The CI docs job runs every example and the link checker on each push;
these tests keep the same guarantees in the tier-1 suite so docs drift
fails fast locally:

- README.md exists and covers the CLI commands;
- every example script is documented in docs/examples.md and runnable
  as ``python -m examples.<name>``;
- relative links in the Markdown front door resolve.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = ["README.md", "ARCHITECTURE.md", "docs/examples.md"]
EXAMPLES = sorted(
    path.stem
    for path in (REPO / "examples").glob("*.py")
    if path.stem != "__init__"
)


class TestReadme:
    def test_exists_and_names_the_paper(self):
        text = (REPO / "README.md").read_text(encoding="utf-8")
        assert "Fine-Grained Data Citation" in text
        assert "CIDR" in text

    def test_documents_every_cli_command(self):
        from repro.cli import build_parser

        text = (REPO / "README.md").read_text(encoding="utf-8")
        parser = build_parser()
        subparsers = next(
            action for action in parser._actions
            if hasattr(action, "choices") and action.choices
        )
        for command in subparsers.choices:
            assert command in text, f"README does not mention {command!r}"

    def test_links_to_architecture_and_examples(self):
        text = (REPO / "README.md").read_text(encoding="utf-8")
        assert "ARCHITECTURE.md" in text
        assert "docs/examples.md" in text


class TestExamplesDoc:
    def test_every_example_has_a_paragraph(self):
        text = (REPO / "docs" / "examples.md").read_text(encoding="utf-8")
        for name in EXAMPLES:
            assert f"{name}.py" in text, (
                f"examples/{name}.py is not documented in docs/examples.md"
            )

    def test_no_stale_example_entries(self):
        text = (REPO / "docs" / "examples.md").read_text(encoding="utf-8")
        import re

        documented = set(re.findall(r"\[`([a-z_]+)\.py`\]", text))
        assert documented == set(EXAMPLES)


class TestLinks:
    @pytest.mark.parametrize("doc", DOC_FILES)
    def test_relative_links_resolve(self, doc):
        sys.path.insert(0, str(REPO / "tools"))
        try:
            from check_doc_links import broken_links
        finally:
            sys.path.pop(0)
        assert broken_links(REPO / doc) == []


class TestExamplesRun:
    def test_quickstart_runs_as_module(self):
        """End-to-end smoke for the documented invocation; CI's docs job
        runs all six examples, tier-1 keeps the fastest one."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, "-m", "examples.quickstart"],
            cwd=REPO,
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "rendered citation" in proc.stdout
