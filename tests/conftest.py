"""Shared fixtures: the paper's database, views, and engines."""

from __future__ import annotations

import pytest

from repro.citation.generator import CitationEngine
from repro.citation.policy import (
    compact_policy,
    comprehensive_policy,
    focused_policy,
)
from repro.gtopdb.sample import paper_database
from repro.gtopdb.schema import gtopdb_schema
from repro.gtopdb.views import paper_registry


@pytest.fixture(scope="session")
def schema():
    return gtopdb_schema()


@pytest.fixture(scope="session")
def db():
    """The paper's running-example instance (session-scoped, read-only)."""
    return paper_database()


@pytest.fixture(scope="session")
def db_with_duplicate():
    """The instance with a second 'Calcitonin' family (Example 3.2)."""
    return paper_database(duplicate_calcitonin=True)


@pytest.fixture(scope="session")
def registry():
    return paper_registry()


@pytest.fixture(scope="session")
def comprehensive_engine(db, registry):
    return CitationEngine(db, registry, policy=comprehensive_policy())


@pytest.fixture(scope="session")
def focused_engine(db, registry):
    return CitationEngine(db, registry, policy=focused_policy(registry))


@pytest.fixture(scope="session")
def compact_engine(db, registry):
    return CitationEngine(db, registry, policy=compact_policy(registry))
