"""Tests for the CI gate helpers in tools/."""

import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture
def typing_ratchet():
    sys.path.insert(0, str(REPO / "tools"))
    try:
        import check_typing_ratchet
    finally:
        sys.path.pop(0)
    return check_typing_ratchet


class TestCountErrors:
    def test_parses_summary_line(self, typing_ratchet):
        report = (
            "src/repro/x.py:1: error: boom\n"
            "Found 12 errors in 3 files (checked 40 source files)\n"
        )
        assert typing_ratchet.count_errors(report) == 12

    def test_singular_error(self, typing_ratchet):
        assert typing_ratchet.count_errors(
            "Found 1 error in 1 file (checked 40 source files)\n"
        ) == 1

    def test_success_counts_zero(self, typing_ratchet):
        assert typing_ratchet.count_errors(
            "Success: no issues found in 40 source files\n"
        ) == 0

    def test_missing_summary_is_none(self, typing_ratchet):
        assert typing_ratchet.count_errors("mypy: command crashed\n") is None


class TestMain:
    def write(self, tmp_path, report, ceiling):
        report_path = tmp_path / "mypy_report.txt"
        report_path.write_text(report)
        ratchet_path = tmp_path / "ratchet.json"
        ratchet_path.write_text(json.dumps({"maximum_errors": ceiling}))
        return report_path, ratchet_path

    def test_under_ceiling_passes(self, typing_ratchet, tmp_path, capsys):
        report, ratchet = self.write(
            tmp_path, "Found 3 errors in 2 files (checked 9 source files)", 5
        )
        assert typing_ratchet.main(["prog", str(report), str(ratchet)]) == 0
        assert "typing ratchet OK" in capsys.readouterr().out

    def test_over_ceiling_fails(self, typing_ratchet, tmp_path, capsys):
        report, ratchet = self.write(
            tmp_path, "Found 7 errors in 2 files (checked 9 source files)", 5
        )
        assert typing_ratchet.main(["prog", str(report), str(ratchet)]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_headroom_hint(self, typing_ratchet, tmp_path, capsys):
        report, ratchet = self.write(
            tmp_path, "Success: no issues found in 9 source files", 50
        )
        assert typing_ratchet.main(["prog", str(report), str(ratchet)]) == 0
        assert "lowering maximum_errors" in capsys.readouterr().out

    def test_malformed_report_is_an_error(self, typing_ratchet, tmp_path):
        report, ratchet = self.write(tmp_path, "no summary here", 5)
        assert typing_ratchet.main(["prog", str(report), str(ratchet)]) == 2

    def test_missing_report_file_is_an_error(self, typing_ratchet, tmp_path):
        assert typing_ratchet.main(
            ["prog", str(tmp_path / "absent.txt")]
        ) == 2

    def test_repo_ratchet_file_is_well_formed(self, typing_ratchet):
        payload = json.loads(
            (REPO / "tools" / "typing_ratchet.json").read_text()
        )
        assert int(payload["maximum_errors"]) >= 0

    def test_py_typed_marker_exists(self):
        assert (REPO / "src" / "repro" / "py.typed").exists()
