"""Tests for the CI gate helpers in tools/."""

import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture
def typing_ratchet():
    sys.path.insert(0, str(REPO / "tools"))
    try:
        import check_typing_ratchet
    finally:
        sys.path.pop(0)
    return check_typing_ratchet


@pytest.fixture
def coverage_ratchet():
    sys.path.insert(0, str(REPO / "tools"))
    try:
        import check_coverage_ratchet
    finally:
        sys.path.pop(0)
    return check_coverage_ratchet


@pytest.fixture
def doc_links():
    sys.path.insert(0, str(REPO / "tools"))
    try:
        import check_doc_links
    finally:
        sys.path.pop(0)
    return check_doc_links


class TestCountErrors:
    def test_parses_summary_line(self, typing_ratchet):
        report = (
            "src/repro/x.py:1: error: boom\n"
            "Found 12 errors in 3 files (checked 40 source files)\n"
        )
        assert typing_ratchet.count_errors(report) == 12

    def test_singular_error(self, typing_ratchet):
        assert typing_ratchet.count_errors(
            "Found 1 error in 1 file (checked 40 source files)\n"
        ) == 1

    def test_success_counts_zero(self, typing_ratchet):
        assert typing_ratchet.count_errors(
            "Success: no issues found in 40 source files\n"
        ) == 0

    def test_missing_summary_is_none(self, typing_ratchet):
        assert typing_ratchet.count_errors("mypy: command crashed\n") is None


class TestMain:
    def write(self, tmp_path, report, ceiling):
        report_path = tmp_path / "mypy_report.txt"
        report_path.write_text(report)
        ratchet_path = tmp_path / "ratchet.json"
        ratchet_path.write_text(json.dumps({"maximum_errors": ceiling}))
        return report_path, ratchet_path

    def test_under_ceiling_passes(self, typing_ratchet, tmp_path, capsys):
        report, ratchet = self.write(
            tmp_path, "Found 3 errors in 2 files (checked 9 source files)", 5
        )
        assert typing_ratchet.main(["prog", str(report), str(ratchet)]) == 0
        assert "typing ratchet OK" in capsys.readouterr().out

    def test_over_ceiling_fails(self, typing_ratchet, tmp_path, capsys):
        report, ratchet = self.write(
            tmp_path, "Found 7 errors in 2 files (checked 9 source files)", 5
        )
        assert typing_ratchet.main(["prog", str(report), str(ratchet)]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_improvement_auto_tightens_ceiling(
        self, typing_ratchet, tmp_path, capsys
    ):
        report, ratchet = self.write(
            tmp_path, "Found 3 errors in 2 files (checked 9 source files)", 50
        )
        assert typing_ratchet.main(["prog", str(report), str(ratchet)]) == 0
        assert "tightened" in capsys.readouterr().out
        assert json.loads(ratchet.read_text())["maximum_errors"] == 3

    def test_tightening_preserves_other_keys(
        self, typing_ratchet, tmp_path
    ):
        report = tmp_path / "mypy_report.txt"
        report.write_text("Success: no issues found in 9 source files")
        ratchet = tmp_path / "ratchet.json"
        ratchet.write_text(
            json.dumps({"comment": "keep me", "maximum_errors": 50})
        )
        assert typing_ratchet.main(["prog", str(report), str(ratchet)]) == 0
        payload = json.loads(ratchet.read_text())
        assert payload == {"comment": "keep me", "maximum_errors": 0}

    def test_exactly_at_ceiling_leaves_file_alone(
        self, typing_ratchet, tmp_path, capsys
    ):
        report, ratchet = self.write(
            tmp_path, "Found 5 errors in 2 files (checked 9 source files)", 5
        )
        before = ratchet.read_text()
        assert typing_ratchet.main(["prog", str(report), str(ratchet)]) == 0
        assert "tightened" not in capsys.readouterr().out
        assert ratchet.read_text() == before

    def test_malformed_report_is_an_error(self, typing_ratchet, tmp_path):
        report, ratchet = self.write(tmp_path, "no summary here", 5)
        assert typing_ratchet.main(["prog", str(report), str(ratchet)]) == 2

    def test_missing_report_file_is_an_error(self, typing_ratchet, tmp_path):
        assert typing_ratchet.main(
            ["prog", str(tmp_path / "absent.txt")]
        ) == 2

    def test_repo_ratchet_file_is_well_formed(self, typing_ratchet):
        payload = json.loads(
            (REPO / "tools" / "typing_ratchet.json").read_text()
        )
        assert int(payload["maximum_errors"]) >= 0

    def test_py_typed_marker_exists(self):
        assert (REPO / "src" / "repro" / "py.typed").exists()


class TestCoverageRatchet:
    def write(self, tmp_path, percent, floor):
        coverage_path = tmp_path / "coverage.json"
        coverage_path.write_text(
            json.dumps({"totals": {"percent_covered": percent}})
        )
        ratchet_path = tmp_path / "ratchet.json"
        ratchet_path.write_text(
            json.dumps({"minimum_percent_covered": floor})
        )
        return coverage_path, ratchet_path

    def test_above_floor_passes(self, coverage_ratchet, tmp_path, capsys):
        coverage, ratchet = self.write(tmp_path, 85.5, 85.0)
        assert coverage_ratchet.main(
            ["prog", str(coverage), str(ratchet)]
        ) == 0
        assert "coverage ratchet OK" in capsys.readouterr().out

    def test_below_floor_fails(self, coverage_ratchet, tmp_path, capsys):
        coverage, ratchet = self.write(tmp_path, 79.0, 85.0)
        assert coverage_ratchet.main(
            ["prog", str(coverage), str(ratchet)]
        ) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_improvement_auto_tightens_floor(
        self, coverage_ratchet, tmp_path, capsys
    ):
        coverage, ratchet = self.write(tmp_path, 90.27, 85.0)
        assert coverage_ratchet.main(
            ["prog", str(coverage), str(ratchet)]
        ) == 0
        assert "tightened" in capsys.readouterr().out
        payload = json.loads(ratchet.read_text())
        # Floor lands one jitter-buffer point under the measurement.
        assert payload["minimum_percent_covered"] == 89.3

    def test_small_gain_inside_buffer_leaves_file_alone(
        self, coverage_ratchet, tmp_path, capsys
    ):
        coverage, ratchet = self.write(tmp_path, 85.5, 85.0)
        before = ratchet.read_text()
        assert coverage_ratchet.main(
            ["prog", str(coverage), str(ratchet)]
        ) == 0
        assert "tightened" not in capsys.readouterr().out
        assert ratchet.read_text() == before

    def test_malformed_coverage_is_an_error(
        self, coverage_ratchet, tmp_path
    ):
        coverage = tmp_path / "coverage.json"
        coverage.write_text("{}")
        ratchet = tmp_path / "ratchet.json"
        ratchet.write_text(json.dumps({"minimum_percent_covered": 80.0}))
        assert coverage_ratchet.main(
            ["prog", str(coverage), str(ratchet)]
        ) == 2

    def test_repo_ratchet_file_is_well_formed(self, coverage_ratchet):
        payload = json.loads(
            (REPO / "tools" / "coverage_ratchet.json").read_text()
        )
        assert 0.0 <= float(payload["minimum_percent_covered"]) <= 100.0


class TestDocLinks:
    def test_broken_link_is_reported(self, doc_links, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("[gone](missing.md) and [ok](other.md)")
        (tmp_path / "other.md").write_text("fine")
        failures = doc_links.broken_links(page)
        assert len(failures) == 1
        assert "missing.md" in failures[0]

    def test_urls_and_anchors_are_ignored(self, doc_links, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("[web](https://example.org) [self](#section)")
        assert doc_links.broken_links(page) == []

    def test_fragment_is_stripped(self, doc_links, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("[sect](other.md#heading)")
        (tmp_path / "other.md").write_text("## heading")
        assert doc_links.broken_links(page) == []


class TestDocCoverage:
    def scaffold(self, tmp_path):
        """Minimal repo: two public modules, one private, one example."""
        pkg = tmp_path / "src" / "repro"
        (pkg / "cq").mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "cq" / "__init__.py").write_text("")
        (pkg / "cq" / "plan.py").write_text("")
        (pkg / "cli.py").write_text("")
        (tmp_path / "examples").mkdir()
        (tmp_path / "examples" / "quickstart.py").write_text("")
        (tmp_path / "docs").mkdir()
        return tmp_path

    def test_public_modules_skip_private_parts(self, doc_links, tmp_path):
        repo = self.scaffold(tmp_path)
        assert doc_links.public_modules(repo) == ["cli.py", "cq/plan.py"]

    def test_reachable_pages_walks_relative_md_links(
        self, doc_links, tmp_path
    ):
        repo = self.scaffold(tmp_path)
        (repo / "docs" / "index.md").write_text("[next](sub/page.md)")
        (repo / "docs" / "sub").mkdir()
        (repo / "docs" / "sub" / "page.md").write_text(
            "[back](../index.md) [root](../../README.md)"
        )
        (repo / "README.md").write_text("no onward links")
        pages = doc_links.reachable_pages(repo / "docs" / "index.md")
        assert {page.name for page in pages} == {
            "index.md", "page.md", "README.md",
        }

    def test_full_coverage_passes(self, doc_links, tmp_path):
        repo = self.scaffold(tmp_path)
        (repo / "docs" / "index.md").write_text(
            "`repro/cli.py` and `repro.cq.plan` and "
            "[`quickstart.py`](../examples/quickstart.py)"
        )
        assert doc_links.coverage_orphans(repo) == []

    def test_orphan_module_and_example_are_listed(self, doc_links, tmp_path):
        repo = self.scaffold(tmp_path)
        (repo / "docs" / "index.md").write_text("`repro/cli.py` only")
        failures = doc_links.coverage_orphans(repo)
        assert any("cq/plan.py" in failure for failure in failures)
        assert any("quickstart.py" in failure for failure in failures)

    def test_missing_front_door_is_an_error(self, doc_links, tmp_path):
        repo = self.scaffold(tmp_path)
        failures = doc_links.coverage_orphans(repo)
        assert failures and "front door" in failures[0]

    def test_main_coverage_flag_runs_against_this_repo(
        self, doc_links, capsys
    ):
        assert doc_links.main(["--coverage"]) == 0
        assert "coverage OK" in capsys.readouterr().out

    def test_main_without_arguments_is_usage_error(self, doc_links, capsys):
        assert doc_links.main([]) == 1
        assert "usage" in capsys.readouterr().err
