"""Integration tests reproducing every worked example of the paper.

Each test class corresponds to one experiment id in EXPERIMENTS.md
(E1–E7); assertions encode the paper's claims verbatim.
"""


from repro.citation.generator import CitationEngine
from repro.citation.order import (
    FewestUncoveredOrder,
    FewestViewsOrder,
    ViewInclusionOrder,
)
from repro.citation.polynomial import monomial_from_tokens
from repro.citation.tokens import BaseRelationToken, ViewCitationToken
from repro.cq.parser import parse_query
from repro.rewriting.engine import enumerate_rewritings


def vt(name, *params):
    return ViewCitationToken(name, params)


class TestE1_Example21_CitationViews:
    """E1: the five citation views and their JSON citations."""

    def test_v1_single_tuple_per_valuation(self, db, registry):
        # "V1 and V2 restrict the output to a single tuple since the
        # parameter F corresponds to the key FID."
        for row in db.relation("Family"):
            instance = registry.get("V1").instance(db, [row[0]])
            assert len(instance) == 1

    def test_v3_contains_all_families(self, db, registry):
        assert len(registry.get("V3").instance(db)) == \
            len(db.relation("Family"))

    def test_v4_groups_by_type(self, db, registry):
        gpcr = registry.get("V4").instance(db, ["gpcr"])
        assert {row[2] for row in gpcr} == {"gpcr"}
        assert len(gpcr) > 1  # a subset of tuples, not a single one

    def test_fv1_json(self, db, registry):
        # {ID: "11", Name: "Calcitonin", Committee: ["Hay", "Poyner"]}
        assert registry.get("V1").citation_for(db, ("11",)) == {
            "ID": "11", "Name": "Calcitonin",
            "Committee": ["Hay", "Poyner"],
        }

    def test_fv2_json(self, db, registry):
        assert registry.get("V2").citation_for(db, ("11",)) == {
            "ID": "11", "Name": "Calcitonin",
            "Text": "The calcitonin peptide family",
            "Contributors": ["Brown", "Smith"],
        }

    def test_fv3_json(self, db, registry):
        assert registry.get("V3").citation_for(db) == {
            "URL": "guidetopharmacology.org", "Owner": "Tony Harmar",
        }

    def test_v4_vs_v5_credit_different_people(self, db, registry):
        # "V4 credits the committee members of families, whereas V5
        # credits the contributors who wrote the introductions."
        v4 = registry.get("V4").citation_for(db, ("gpcr",))
        v5 = registry.get("V5").citation_for(db, ("gpcr",))
        v4_calcitonin = next(g for g in v4["Contributors"]
                             if g["Name"] == "Calcitonin")
        v5_calcitonin = next(g for g in v5["Contributors"]
                             if g["Name"] == "Calcitonin")
        assert v4_calcitonin["Committee"] == ["Hay", "Poyner"]
        assert v5_calcitonin["Committee"] == ["Brown", "Smith"]


class TestE2_Example22_Rewritings:
    QUERY = 'Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)'

    def test_both_paper_rewritings_found(self, registry):
        rewritings = enumerate_rewritings(parse_query(self.QUERY), registry)
        used = {
            frozenset(a.view.name for a in r.applications)
            for r in rewritings
        }
        assert frozenset({"V1", "V2"}) in used  # the paper's Q1
        assert frozenset({"V4", "V2"}) in used  # the paper's Q2

    def test_absorption_distinguishes_q1_q2(self, registry):
        rewritings = enumerate_rewritings(parse_query(self.QUERY), registry)
        q1 = next(r for r in rewritings if {a.view.name for a in
                                            r.applications} == {"V1", "V2"})
        q2 = next(r for r in rewritings if {a.view.name for a in
                                            r.applications} == {"V4", "V2"})
        # "Q2 leads to a more specific citation than Q1 because the
        # comparison predicate matches the lambda term of V4."
        v4_app = next(a for a in q2.applications if a.view.name == "V4")
        assert [repr(t) for t in v4_app.parameter_terms] == ['"gpcr"']
        v1_app = next(a for a in q1.applications if a.view.name == "V1")
        assert v1_app.parameter_terms[0].is_variable

    def test_v4_groups_gpcr_families_into_one_citation(
            self, comprehensive_engine):
        result = comprehensive_engine.cite(self.QUERY)
        # Every output tuple shares the single V4("gpcr") token ...
        v4_tokens = set()
        for tc in result.tuples.values():
            for monomial in tc.polynomial.monomials():
                for token in monomial.tokens():
                    if isinstance(token, ViewCitationToken) and \
                            token.view_name == "V4":
                        v4_tokens.add(token)
        assert v4_tokens == {vt("V4", "gpcr")}
        # ... while V1 tokens differ per family.
        v1_tokens = set()
        for tc in result.tuples.values():
            for monomial in tc.polynomial.monomials():
                for token in monomial.tokens():
                    if isinstance(token, ViewCitationToken) and \
                            token.view_name == "V1":
                        v1_tokens.add(token)
        assert len(v1_tokens) == len(result.tuples)


class TestE3_Example23_Preference:
    QUERY = ('Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), '
             'Ty = "gpcr"')

    def test_four_rewritings(self, registry):
        rewritings = enumerate_rewritings(parse_query(self.QUERY), registry)
        assert len(rewritings) == 4

    def test_all_total(self, registry):
        rewritings = enumerate_rewritings(parse_query(self.QUERY), registry)
        assert all(r.is_total for r in rewritings)

    def test_paper_preference_criteria_select_q4(self, registry):
        rewritings = enumerate_rewritings(parse_query(self.QUERY), registry)
        best = min(rewritings, key=lambda r: (
            not r.is_total,                    # (i) total
            r.view_count,                      # (ii) fewest views
            r.residual_comparison_count,       # (iii) absorbed comparison
        ))
        assert [a.view.name for a in best.applications] == ["V5"]

    def test_focused_policy_cites_only_v5(self, focused_engine):
        result = focused_engine.cite(self.QUERY)
        for tc in result.tuples.values():
            tokens = {
                t for m in tc.polynomial.monomials() for t in m.tokens()
            }
            assert tokens == {vt("V5", "gpcr")}


class TestE4_Examples31to33_Semiring:
    QUERY = 'Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)'

    def test_example_31_joint_use(self, comprehensive_engine):
        """cite for one binding = FV1 · FV2 (Definition 3.1)."""
        result = comprehensive_engine.cite(self.QUERY)
        tc = result.tuples[("Calcitonin",)]
        expected = monomial_from_tokens([vt("V1", "11"), vt("V2", "11")])
        assert expected in set(tc.polynomial.monomials())

    def test_example_32_multiple_bindings(self, db_with_duplicate,
                                          registry):
        """Two families named Calcitonin => '+' over two expressions."""
        from repro.citation.policy import comprehensive_policy
        engine = CitationEngine(db_with_duplicate, registry,
                                policy=comprehensive_policy())
        tc = engine.cite(self.QUERY).tuples[("Calcitonin",)]
        m11 = monomial_from_tokens([vt("V1", "11"), vt("V2", "11")])
        m19 = monomial_from_tokens([vt("V1", "19"), vt("V2", "19")])
        monomials = set(tc.polynomial.monomials())
        assert m11 in monomials and m19 in monomials

    def test_example_33_rewriting_sum(self, comprehensive_engine):
        """(CV1("13") +R CV4("gpcr")) · CV2("13") for tuple ('b')."""
        tc = comprehensive_engine.cite(self.QUERY).tuples[("b",)]
        monomials = set(tc.polynomial.monomials())
        assert monomial_from_tokens([vt("V1", "13"), vt("V2", "13")]) \
            in monomials
        assert monomial_from_tokens([vt("V4", "gpcr"), vt("V2", "13")]) \
            in monomials

    def test_example_33_plan_independence(self, db, registry):
        from repro.citation.policy import comprehensive_policy
        engine = CitationEngine(db, registry,
                                policy=comprehensive_policy())
        variants = [
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)',
            'Q(N) :- FamilyIntro(F, Tx), Family(F, N, Ty), Ty = "gpcr"',
            'Q(N) :- Family(F, N, "gpcr"), FamilyIntro(F, Tx)',
        ]
        results = [engine.cite(text) for text in variants]
        for output in results[0].tuples:
            polynomials = {
                r.tuples[output].polynomial for r in results
            }
            assert len(polynomials) == 1


class TestE5_Example34_Idempotence:
    def test_single_citation_for_whole_result(self, focused_engine):
        result = focused_engine.cite(
            'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), '
            'Ty = "gpcr"'
        )
        assert len(result.aggregate_polynomial.monomials()) == 1
        # Coefficient 1: idempotent + collapses the per-tuple repeats.
        assert list(result.aggregate_polynomial.terms.values()) == [1]


class TestE6_Example35_Interpretations:
    def test_dot_union_and_merge(self, db, registry):
        fv1 = registry.get("V1").citation_for(db, ("11",))
        fv2 = registry.get("V2").citation_for(db, ("11",))
        from repro.citation.combiners import dot_merge, dot_union
        assert dot_union([fv1, fv2]) == [fv1, fv2]
        merged = dot_merge([fv1, fv2])[0]
        assert merged["Committee"] == ["Hay", "Poyner"]
        assert merged["Contributors"] == ["Brown", "Smith"]
        assert merged["Text"] == "The calcitonin peptide family"


class TestE7_Examples36to38_Orders:
    def test_example_36(self):
        order = FewestViewsOrder()
        m_two = monomial_from_tokens([vt("V1", "13"), vt("V2", "13")])
        m_one = monomial_from_tokens([vt("V5", "gpcr")])
        assert order.strictly_less(m_two, m_one)

    def test_example_37(self):
        order = FewestUncoveredOrder()
        m_covered = monomial_from_tokens([vt("V1", "13")])
        m_uncovered = monomial_from_tokens([
            vt("V1", "13"), BaseRelationToken("FC"),
        ])
        assert order.strictly_less(m_uncovered, m_covered)

    def test_example_38(self, registry):
        order = ViewInclusionOrder(registry)
        general = monomial_from_tokens([vt("V3")])
        specific = monomial_from_tokens([vt("V1", "11")])
        assert order.strictly_less(general, specific)
