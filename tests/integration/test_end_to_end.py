"""Cross-module integration tests beyond the paper's worked examples."""

import json


from repro import (
    CitationEngine,
    PageViewBaseline,
    VersionedCitationEngine,
    VersionedDatabase,
    render_json,
)
from repro.citation.policy import comprehensive_policy
from repro.cq.evaluation import evaluate_query
from repro.cq.parser import parse_query
from repro.gtopdb.generator import generate_database
from repro.gtopdb.schema import gtopdb_schema
from repro.gtopdb.views import paper_registry
from repro.workload.queries import QueryGenerator


class TestSqlToCitationPipeline:
    def test_sql_and_datalog_citations_agree(self, db, registry):
        engine = CitationEngine(db, registry,
                                policy=comprehensive_policy())
        from_sql = engine.cite_sql(
            "SELECT f.FName, i.Text FROM Family f, FamilyIntro i "
            "WHERE f.FID = i.FID AND f.Type = 'gpcr'"
        )
        from_datalog = engine.cite(
            'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), '
            'Ty = "gpcr"'
        )
        assert set(from_sql.tuples) == set(from_datalog.tuples)
        for output in from_sql.tuples:
            assert from_sql.tuples[output].polynomial == \
                from_datalog.tuples[output].polynomial


class TestSyntheticScale:
    def test_pipeline_on_generated_database(self, registry):
        db = generate_database(families=200, persons=60, seed=23)
        engine = CitationEngine(db, registry)
        result = engine.cite(
            'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), '
            'Ty = "gpcr"'
        )
        assert result.tuples
        # All gpcr families with intros are covered by the one V5 token.
        assert len(result.aggregate_polynomial.monomials()) == 1

    def test_random_workload_citable(self, registry):
        db = generate_database(families=60, persons=25, seed=31)
        generator = QueryGenerator(db.schema, db, seed=13, max_atoms=2)
        engine = CitationEngine(db, registry)
        cited = 0
        for query in generator.generate_many(10):
            result = engine.cite(query)
            assert set(result.output_tuples) == set(
                evaluate_query(query, db)
            )
            if result.rewritings:
                cited += 1
        assert cited > 0


class TestBaselineVsModel:
    def test_coverage_gap(self, db, registry):
        baseline = PageViewBaseline(db, registry)
        baseline.register_all_pages("V1")
        baseline.register_all_pages("V2")
        engine = CitationEngine(db, registry)
        queries = [
            parse_query('P(F, N, Ty) :- Family(F, N, Ty), F = "11"'),
            parse_query('P(N) :- Family(F, N, Ty), Ty = "gpcr"'),
            parse_query(
                "P(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)"
            ),
            parse_query(
                "P(N, Pn) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A)"
            ),
        ]
        baseline_covered = sum(
            1 for q in queries if baseline.can_cite(q)
        )
        model_covered = sum(
            1 for q in queries
            if engine.cite(q).records != engine.database_citation
        )
        assert baseline_covered == 1
        assert model_covered == len(queries)


class TestVersionedEndToEnd:
    def test_citation_changes_across_versions(self):
        vdb = VersionedDatabase(gtopdb_schema())
        vdb.insert("Family", "11", "Calcitonin", "gpcr")
        vdb.insert("Person", "p1", "Hay", "x")
        vdb.insert("FC", "11", "p1")
        v1 = vdb.commit("v1")
        vdb.insert("Person", "p2", "Poyner", "y")
        vdb.insert("FC", "11", "p2")
        v2 = vdb.commit("v2")
        engine = VersionedCitationEngine(vdb, paper_registry())
        r1 = engine.cite('Q(N) :- Family(F, N, Ty)', version=v1)
        r2 = engine.cite('Q(N) :- Family(F, N, Ty)', version=v2)
        assert "Poyner" not in json.dumps(r1.records)
        assert "Poyner" in json.dumps(r2.records)


class TestRenderingPipeline:
    def test_json_roundtrip(self, focused_engine):
        result = focused_engine.cite(
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr"'
        )
        payload = json.loads(render_json(result, include_tuples=True))
        assert payload["database"][0]["Owner"] == "Tony Harmar"
        assert len(payload["tuples"]) == len(result.tuples)


class TestEmptyAndEdgeQueries:
    def test_empty_result_set_still_cited(self, focused_engine):
        result = focused_engine.cite(
            'Q(N) :- Family(F, N, Ty), Ty = "nonexistent"'
        )
        assert result.tuples == {}
        assert result.records  # Def 3.4 neutral element

    def test_unsatisfiable_query(self, focused_engine):
        result = focused_engine.cite(
            'Q(N) :- Family(F, N, Ty), Ty = "a", Ty = "b"'
        )
        assert result.rewritings == ()
        assert result.records == result.database_citation

    def test_query_without_any_matching_view(self, focused_engine):
        result = focused_engine.cite("Q(V) :- MetaData(T, V)")
        # No view covers MetaData: identity rewriting with C_R token.
        assert len(result.rewritings) == 1
        assert result.rewritings[0].view_count == 0
        sample = next(iter(result.tuples.values()))
        tokens = [t for m in sample.polynomial.monomials()
                  for t in m.tokens()]
        assert all(
            type(t).__name__ == "BaseRelationToken" for t in tokens
        )
