"""Integration: partial rewritings, C_R tokens, and order interaction.

Example 3.7 introduces ``C_R`` atoms for base-relation access; these
tests pin down how partial rewritings flow through orders, policies, and
rendering — the paths exercised when the owner's views do not cover the
whole schema (the realistic situation).
"""


from repro.citation.generator import CitationEngine
from repro.citation.policy import (
    CitationPolicy,
    comprehensive_policy,
    focused_policy,
)
from repro.citation.tokens import BaseRelationToken, ViewCitationToken

# No view covers FC or Person: every rewriting is partial.
PARTIAL_QUERY = (
    "Q(N, Pn) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A)"
)


class TestPartialCitations:
    def test_monomials_mix_views_and_relations(self, comprehensive_engine):
        result = comprehensive_engine.cite(PARTIAL_QUERY)
        sample = next(iter(result.tuples.values()))
        for monomial in sample.polynomial.monomials():
            tokens = monomial.tokens()
            assert any(isinstance(t, ViewCitationToken) for t in tokens)
            assert BaseRelationToken("FC") in tokens
            assert BaseRelationToken("Person") in tokens

    def test_focused_still_cites_partial(self, focused_engine):
        result = focused_engine.cite(PARTIAL_QUERY)
        assert result.tuples
        for tc in result.tuples.values():
            assert not tc.polynomial.is_zero

    def test_fewest_uncovered_prefers_fewer_relations(self, db, registry):
        # Among the partial rewritings, those covering Family with a view
        # have 2 C_R tokens; the fewest-uncovered order keeps exactly
        # those (rather than any hypothetical 3-C_R monomial).
        engine = CitationEngine(db, registry,
                                policy=focused_policy(registry))
        result = engine.cite(PARTIAL_QUERY)
        for tc in result.tuples.values():
            for monomial in tc.polynomial.monomials():
                base_count = sum(
                    1 for t in monomial.tokens()
                    if isinstance(t, BaseRelationToken)
                )
                assert base_count == 2

    def test_relation_records_rendered(self, focused_engine):
        result = focused_engine.cite(PARTIAL_QUERY)
        rendered = str(result.records)
        assert "'Relation': 'FC'" in rendered or "Relation" in rendered

    def test_explanation_reports_direct_access(self, focused_engine):
        from repro.citation.explain import explain
        result = focused_engine.cite(PARTIAL_QUERY)
        text = explain(result).describe()
        assert "direct access to FC, Person" in text


class TestMetadataOnlyQuery:
    def test_pure_base_citation(self, db, registry):
        engine = CitationEngine(db, registry,
                                policy=comprehensive_policy())
        result = engine.cite("Q(V) :- MetaData(T, V)")
        sample = next(iter(result.tuples.values()))
        monomial = sample.polynomial.monomials()[0]
        assert monomial.tokens() == [BaseRelationToken("MetaData")]

    def test_identity_rewriting_is_partial(self, db, registry):
        engine = CitationEngine(db, registry)
        result = engine.cite("Q(V) :- MetaData(T, V)")
        assert len(result.rewritings) == 1
        assert result.rewritings[0].is_partial


class TestCountedPolicyOnPartial:
    def test_derivation_counts_surface(self, db, registry):
        policy = CitationPolicy(name="counted", plus="counted",
                                dot="merge")
        engine = CitationEngine(db, registry, policy=policy)
        # Family 11 has a two-person committee: tuple (Calcitonin, Hay)
        # has one binding, but the projection to names only can repeat.
        result = engine.cite(PARTIAL_QUERY)
        assert result.tuples
        # All coefficients are at least 1 and preserved.
        for tc in result.tuples.values():
            assert all(c >= 1 for c in tc.polynomial.terms.values())
