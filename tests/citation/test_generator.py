"""Tests for the end-to-end citation engine (Defs 3.1-3.4)."""


from repro.citation.generator import CitationEngine
from repro.citation.policy import CitationPolicy, comprehensive_policy
from repro.citation.tokens import BaseRelationToken, ViewCitationToken
from repro.cq.parser import parse_query

EX22_QUERY = 'Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)'


def vt(name, *params):
    return ViewCitationToken(name, params)


class TestSymbolicPipeline:
    def test_example_33_polynomial(self, comprehensive_engine):
        """The paper's Example 3.3 citation for output tuple ('b')."""
        result = comprehensive_engine.cite(EX22_QUERY)
        polynomial = result.tuples[("b",)].polynomial
        monomials = set(polynomial.monomials())
        # (CV1("13") +R CV4("gpcr")) · CV2("13"), distributed:
        from repro.citation.polynomial import monomial_from_tokens
        assert monomial_from_tokens([vt("V1", "13"), vt("V2", "13")]) \
            in monomials
        assert monomial_from_tokens([vt("V4", "gpcr"), vt("V2", "13")]) \
            in monomials

    def test_per_rewriting_polynomials_aligned(self, comprehensive_engine):
        result = comprehensive_engine.cite(EX22_QUERY)
        tc = result.tuples[("b",)]
        assert len(tc.per_rewriting) == len(result.rewritings)
        for rewriting, polynomial in zip(result.rewritings,
                                         tc.per_rewriting):
            for monomial in polynomial.monomials():
                views_used = {
                    t.view_name for t in monomial.tokens()
                    if isinstance(t, ViewCitationToken)
                }
                declared = {a.view.name for a in rewriting.applications}
                assert views_used <= declared

    def test_output_tuples_match_query_answer(self, db,
                                              comprehensive_engine):
        from repro.cq.evaluation import evaluate_query
        result = comprehensive_engine.cite(EX22_QUERY)
        assert set(result.output_tuples) == set(
            evaluate_query(parse_query(EX22_QUERY), db)
        )

    def test_range_query_cites_like_its_unconstrained_answer(
        self, db, comprehensive_engine
    ):
        """Range-pushed plans run unchanged through the citation
        pipeline: outputs match direct evaluation and every rewriting
        still contributes."""
        from repro.cq.evaluation import evaluate_query
        query = 'Q(N) :- Family(F, N, Ty), F <= "13", FamilyIntro(F, Tx)'
        result = comprehensive_engine.cite(query)
        assert set(result.output_tuples) == set(
            evaluate_query(parse_query(query), db)
        )
        assert result.output_tuples  # the range keeps family 13
        assert all(
            tc.polynomial.monomials() for tc in result.tuples.values()
        )

    def test_multiple_bindings_sum(self, db_with_duplicate, registry):
        """Example 3.2: duplicated family name => + over bindings."""
        engine = CitationEngine(db_with_duplicate, registry,
                                policy=comprehensive_policy())
        result = engine.cite(EX22_QUERY)
        polynomial = result.tuples[("Calcitonin",)].polynomial
        # Families 11 and 19 both named Calcitonin: tokens for both ids.
        params = {
            t.parameters for m in polynomial.monomials()
            for t in m.tokens() if isinstance(t, ViewCitationToken)
            and t.view_name == "V1"
        }
        assert ("11",) in params and ("19",) in params

    def test_plan_independence(self, db, registry):
        """Def 3.3: equivalent queries get identical citations."""
        engine = CitationEngine(db, registry,
                                policy=comprehensive_policy())
        q1 = engine.cite(
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)'
        )
        q2 = engine.cite(
            'Q(N) :- FamilyIntro(F, Tx), Family(F, N, "gpcr")'
        )
        for output in q1.tuples:
            assert q1.tuples[output].polynomial == \
                q2.tuples[output].polynomial

    def test_base_relation_tokens_for_uncovered(self, db, registry):
        engine = CitationEngine(db, registry,
                                policy=comprehensive_policy())
        result = engine.cite(
            "Q(N, Pn) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A)"
        )
        sample = next(iter(result.tuples.values()))
        tokens = {
            t for m in sample.polynomial.monomials() for t in m.tokens()
        }
        assert BaseRelationToken("FC") in tokens
        assert BaseRelationToken("Person") in tokens


class TestExample34:
    """Fully instantiated rewriting + idempotence => single citation."""

    def test_single_citation_for_result_set(self, focused_engine):
        result = focused_engine.cite(
            'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), '
            'Ty = "gpcr"'
        )
        # The preferred rewriting V5("gpcr") is fully instantiated; every
        # tuple carries the same single monomial.
        polynomials = {tc.polynomial for tc in result.tuples.values()}
        assert len(polynomials) == 1
        polynomial = polynomials.pop()
        assert len(polynomial.monomials()) == 1
        assert polynomial.monomials()[0].tokens() == [vt("V5", "gpcr")]
        # Aggregate is that same single citation.
        assert result.aggregate_polynomial == polynomial


class TestRendering:
    def test_records_rendered_from_views(self, focused_engine):
        result = focused_engine.cite(EX22_QUERY)
        body = [r for r in result.records
                if r not in result.database_citation]
        assert any("Contributors" in r or "Committee" in r for r in body)

    def test_database_citation_always_present(self, focused_engine):
        result = focused_engine.cite(
            'Q(N) :- Family(F, N, Ty), Ty = "no-such-type"'
        )
        assert result.tuples == {}
        assert result.records == result.database_citation
        assert result.records[0]["Owner"] == "Tony Harmar"

    def test_database_citation_can_be_disabled(self, db, registry):
        policy = CitationPolicy(name="bare",
                                include_database_citation=False)
        engine = CitationEngine(db, registry, policy=policy)
        result = engine.cite(
            'Q(N) :- Family(F, N, Ty), Ty = "no-such-type"'
        )
        assert result.records == []

    def test_counted_plus_adds_derivation_counts(self, db_with_duplicate,
                                                 registry):
        policy = CitationPolicy(name="counted", plus="counted",
                                dot="merge")
        engine = CitationEngine(db_with_duplicate, registry, policy=policy)
        result = engine.cite("Q(Ty) :- Family(F, N, Ty)")
        # Type 'gpcr' has many derivations; with +R=union the V4 polynomial
        # keeps a count per monomial.
        assert ("gpcr",) in result.tuples

    def test_custom_database_citation(self, db, registry):
        engine = CitationEngine(
            db, registry,
            database_citation=[{"Database": "GtoPdb", "Year": 2016}],
        )
        result = engine.cite(EX22_QUERY)
        assert {"Database": "GtoPdb", "Year": 2016} in result.records


class TestEngineAPI:
    def test_cite_accepts_parsed_query(self, focused_engine):
        query = parse_query(EX22_QUERY)
        result = focused_engine.cite(query)
        assert result.query is query

    def test_cite_sql(self, db, registry):
        engine = CitationEngine(db, registry)
        result = engine.cite_sql(
            "SELECT f.FName FROM Family f WHERE f.Type = 'gpcr'"
        )
        assert ("Calcitonin",) in result.tuples

    def test_cite_view_directly(self, focused_engine):
        record = focused_engine.cite_view("V1", ("11",))
        assert record["Committee"] == ["Hay", "Poyner"]

    def test_refresh_clears_caches(self, registry):
        from repro.gtopdb.sample import paper_database
        db = paper_database()
        engine = CitationEngine(db, registry)
        before = engine.cite('Q(N) :- Family(F, N, Ty), Ty = "vgic"')
        assert len(before.tuples) == 1
        db.insert("Family", "21", "NewFam", "vgic")
        engine.refresh()
        after = engine.cite('Q(N) :- Family(F, N, Ty), Ty = "vgic"')
        assert len(after.tuples) == 2

    def test_result_repr(self, focused_engine):
        result = focused_engine.cite(EX22_QUERY)
        assert "tuples" in repr(result)

    def test_citation_payload_shape(self, focused_engine):
        payload = focused_engine.cite(EX22_QUERY).citation()
        assert set(payload) == {"query", "policy", "database", "citations"}
