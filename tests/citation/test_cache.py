"""Tests for the rewriting cache (Section 4: caching)."""


import pytest

from repro.citation.cache import (
    CachedRewritingEngine,
    cached_engine,
    canonical_key,
)
from repro.citation.generator import CitationEngine
from repro.cq.parser import parse_query
from repro.rewriting.engine import RewritingEngine


class TestCanonicalKey:
    def test_alpha_equivalent_queries_share_key(self):
        q1 = parse_query('Q(N) :- Family(F, N, Ty), Ty = "gpcr"')
        q2 = parse_query('Q(M) :- Family(G, M, T2), T2 = "gpcr"')
        assert canonical_key(q1) == canonical_key(q2)

    def test_different_constants_differ(self):
        q1 = parse_query('Q(N) :- Family(F, N, Ty), Ty = "gpcr"')
        q2 = parse_query('Q(N) :- Family(F, N, Ty), Ty = "vgic"')
        assert canonical_key(q1) != canonical_key(q2)

    def test_different_structure_differs(self):
        q1 = parse_query("Q(N) :- Family(F, N, Ty)")
        q2 = parse_query("Q(N) :- Family(F, N, Ty), FamilyIntro(F, Tx)")
        assert canonical_key(q1) != canonical_key(q2)

    def test_comparison_orientation_normalized(self):
        q1 = parse_query("Q(A) :- R(A, B), B > 3")
        q2 = parse_query("Q(A) :- R(A, B), 3 < B")
        assert canonical_key(q1) == canonical_key(q2)

    def test_head_projection_matters(self):
        q1 = parse_query("Q(A) :- R(A, B)")
        q2 = parse_query("Q(B) :- R(A, B)")
        assert canonical_key(q1) != canonical_key(q2)


class TestCachedEngine:
    def test_hit_on_repeat(self, registry):
        engine = cached_engine(registry)
        query = parse_query('Q(N) :- Family(F, N, Ty), Ty = "gpcr"')
        first = engine.rewrite(query)
        second = engine.rewrite(query)
        assert first is second
        assert engine.hits == 1 and engine.misses == 1

    def test_hit_on_alpha_equivalent(self, registry):
        engine = cached_engine(registry)
        engine.rewrite(parse_query('Q(N) :- Family(F, N, Ty), Ty = "gpcr"'))
        engine.rewrite(parse_query('Q(M) :- Family(G, M, T), T = "gpcr"'))
        assert engine.hits == 1

    def test_miss_on_new_structure(self, registry):
        engine = cached_engine(registry)
        engine.rewrite(parse_query("Q(N) :- Family(F, N, Ty)"))
        engine.rewrite(parse_query("Q(Tx) :- FamilyIntro(F, Tx)"))
        assert engine.misses == 2
        assert engine.size == 2

    def test_clear(self, registry):
        engine = cached_engine(registry)
        engine.rewrite(parse_query("Q(N) :- Family(F, N, Ty)"))
        engine.clear()
        assert engine.size == 0 and engine.hits == 0

    def test_cached_results_identical(self, registry):
        plain = RewritingEngine(registry)
        cached = CachedRewritingEngine(RewritingEngine(registry))
        query = parse_query('Q(N) :- Family(F, N, Ty), Ty = "gpcr"')
        assert [repr(r.query) for r in plain.rewrite(query)] == \
            [repr(r.query) for r in cached.rewrite(query)]


class TestCacheBound:
    """The LRU bound: millions of distinct structures must not grow the
    cache without limit."""

    QUERIES = [
        "Q(N) :- Family(F, N, Ty)",
        "Q(Tx) :- FamilyIntro(F, Tx)",
        "Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)",
    ]

    def test_least_recently_used_structure_evicted(self, registry):
        engine = CachedRewritingEngine(RewritingEngine(registry),
                                       max_entries=2)
        for text in self.QUERIES:
            engine.rewrite(parse_query(text))
        assert engine.size == 2
        assert engine.evictions == 1
        # The oldest structure was evicted: re-rewriting misses again.
        misses = engine.misses
        engine.rewrite(parse_query(self.QUERIES[0]))
        assert engine.misses == misses + 1

    def test_hit_refreshes_lru_order(self, registry):
        engine = CachedRewritingEngine(RewritingEngine(registry),
                                       max_entries=2)
        engine.rewrite(parse_query(self.QUERIES[0]))
        engine.rewrite(parse_query(self.QUERIES[1]))
        engine.rewrite(parse_query(self.QUERIES[0]))  # refresh entry 0
        engine.rewrite(parse_query(self.QUERIES[2]))  # evicts entry 1
        hits = engine.hits
        engine.rewrite(parse_query(self.QUERIES[0]))
        assert engine.hits == hits + 1

    def test_clear_resets_counters_coherently(self, registry):
        engine = CachedRewritingEngine(RewritingEngine(registry),
                                       max_entries=1)
        for text in self.QUERIES:
            engine.rewrite(parse_query(text))
        assert engine.evictions == 2
        engine.clear()
        assert engine.size == 0
        assert (engine.hits, engine.misses, engine.evictions) == (0, 0, 0)

    def test_rejects_nonpositive_bound(self, registry):
        with pytest.raises(ValueError):
            CachedRewritingEngine(RewritingEngine(registry), max_entries=0)


class TestCitationEngineIntegration:
    def test_cache_flag_preserves_results(self, db, registry):
        query = 'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)'
        plain = CitationEngine(db, registry).cite(query)
        cached = CitationEngine(db, registry,
                                cache_rewritings=True).cite(query)
        assert set(plain.tuples) == set(cached.tuples)
        for output in plain.tuples:
            assert plain.tuples[output].polynomial == \
                cached.tuples[output].polynomial

    def test_cache_reused_across_alpha_variants(self, db, registry):
        engine = CitationEngine(db, registry, cache_rewritings=True)
        engine.cite('Q(N) :- Family(F, N, Ty), Ty = "gpcr"')
        engine.cite('Q(M) :- Family(G, M, T), T = "gpcr"')
        assert engine.rewriting_engine.hits == 1
