"""Tests for the order relations of Section 3.4 (Examples 3.6-3.8)."""

import pytest

from repro.citation.order import (
    FewestUncoveredOrder,
    FewestViewsOrder,
    LexicographicOrder,
    ViewInclusionOrder,
    absorbing_sum,
    best_polynomials,
    normal_form,
    polynomial_leq,
)
from repro.citation.polynomial import (
    monomial_from_tokens,
    polynomial_from_monomials,
)
from repro.citation.tokens import BaseRelationToken, ViewCitationToken


def vt(name, *params):
    return ViewCitationToken(name, params)


def mono(*tokens):
    return monomial_from_tokens(list(tokens))


def poly(*monomials):
    return polynomial_from_monomials(list(monomials))


M1 = mono(vt("V1", "11"), vt("V2", "11"))      # two views
M2 = mono(vt("V5", "gpcr"))                     # one view
M3 = mono(vt("V1", "11"), BaseRelationToken("FC"))  # view + C_R
M4 = mono(vt("V4", "gpcr"))                     # one view


class TestFewestViewsOrder:
    """Example 3.6: more multiplicands => smaller."""

    order = FewestViewsOrder()

    def test_fewer_views_preferred(self):
        assert self.order.leq(M1, M2)
        assert not self.order.leq(M2, M1)
        assert self.order.strictly_less(M1, M2)

    def test_equal_counts_equivalent(self):
        assert self.order.equivalent(M2, M4)

    def test_base_tokens_not_counted(self):
        # M3 has one view + one C_R: view count 1, same as M2.
        assert self.order.equivalent(M2, M3)

    def test_reflexive(self):
        for m in (M1, M2, M3):
            assert self.order.leq(m, m)


class TestFewestUncoveredOrder:
    """Example 3.7: more C_R atoms => smaller."""

    order = FewestUncoveredOrder()

    def test_fewer_uncovered_preferred(self):
        assert self.order.strictly_less(M3, M2)

    def test_views_not_counted(self):
        assert self.order.equivalent(M1, M2)


class TestViewInclusionOrder:
    """Example 3.8: included ('best fit') views preferred."""

    @pytest.fixture
    def order(self, registry):
        return ViewInclusionOrder(registry)

    def test_finer_view_dominates(self, order):
        # V1 (λF) strictly finer than V3 (no λ): a V3 citation is ≤ a V1.
        a = mono(vt("V3"))
        b = mono(vt("V1", "11"))
        assert order.leq(a, b)
        assert not order.leq(b, a)

    def test_view_beats_base_relation(self, order):
        a = mono(BaseRelationToken("Family"))
        b = mono(vt("V1", "11"))
        assert order.strictly_less(a, b)

    def test_incomparable_views(self, order):
        a = mono(vt("V1", "11"))
        b = mono(vt("V2", "11"))
        assert not order.strictly_less(a, b)
        assert not order.strictly_less(b, a)

    def test_monomial_normalization_drops_dominated(self, order):
        m = mono(vt("V1", "11"), vt("V3"))
        normalized = order.normalize_monomial(m)
        assert normalized.tokens() == [vt("V1", "11")]

    def test_hoare_domination(self, order):
        small = mono(vt("V3"), BaseRelationToken("FC"))
        large = mono(vt("V1", "11"), vt("V2", "11"))
        # V3 ≤ V1 and C_R ≤ anything-view: small ≤ large.
        assert order.leq(small, large)


class TestLexicographicOrder:
    def test_priority_respected(self):
        order = LexicographicOrder([
            FewestUncoveredOrder(), FewestViewsOrder(),
        ])
        # M3 has a C_R: loses at priority 1 even though view counts tie.
        assert order.strictly_less(M3, M2)
        # No C_R anywhere: falls through to view counting.
        assert order.strictly_less(M1, M2)

    def test_empty_orders_rejected(self):
        with pytest.raises(ValueError):
            LexicographicOrder([])

    def test_all_equivalent_is_leq(self):
        order = LexicographicOrder([FewestViewsOrder()])
        assert order.leq(M2, M4) and order.leq(M4, M2)


class TestNormalForm:
    order = FewestViewsOrder()

    def test_dominated_monomials_removed(self):
        p = poly(M1, M2)
        nf = normal_form(p, self.order)
        assert nf.monomials() == [M2]

    def test_equivalent_monomials_kept(self):
        p = poly(M2, M4)
        nf = normal_form(p, self.order)
        assert set(nf.monomials()) == {M2, M4}

    def test_zero_stays_zero(self):
        assert normal_form(poly(), self.order).is_zero


class TestPolynomialOrder:
    order = FewestViewsOrder()

    def test_polynomial_leq(self):
        assert polynomial_leq(poly(M1), poly(M2), self.order)
        assert not polynomial_leq(poly(M2), poly(M1), self.order)

    def test_absorbing_sum(self):
        combined = absorbing_sum([poly(M1), poly(M2)], self.order)
        assert combined.monomials() == [M2]

    def test_best_polynomials_drops_dominated(self):
        kept = best_polynomials([poly(M1), poly(M2)], self.order)
        assert kept == [poly(M2)]

    def test_best_polynomials_keeps_incomparable(self):
        kept = best_polynomials([poly(M2), poly(M4)], self.order)
        assert len(kept) == 2

    def test_best_polynomials_dedupes(self):
        kept = best_polynomials([poly(M2), poly(M2)], self.order)
        assert kept == [poly(M2)]
