"""Tests for the policy specification language (Section 4 open problem)."""

import pytest

from repro.citation.order import LexicographicOrder, ViewInclusionOrder
from repro.citation.policy_language import (
    PolicyAnalysis,
    analyze_policy,
    parse_policy,
)
from repro.errors import PolicyError

SPEC = """
policy curated {
    dot    = merge
    plus   = union
    plusR  = best
    agg    = union
    order  = fewest-uncovered > fewest-views
    neutral = on
}
"""


class TestParsing:
    def test_full_spec(self):
        policy = parse_policy(SPEC)
        assert policy.name == "curated"
        assert policy.dot == "merge"
        assert policy.plus_r == "best"
        assert isinstance(policy.order, LexicographicOrder)

    def test_defaults_applied(self):
        policy = parse_policy("policy minimal { }")
        assert policy.dot == "merge"
        assert policy.plus_r == "union"
        assert policy.order is None
        assert policy.include_database_citation

    def test_single_order(self):
        policy = parse_policy(
            "policy p { plusR = best\n order = fewest-views }"
        )
        assert not isinstance(policy.order, LexicographicOrder)

    def test_view_inclusion_needs_registry(self, registry):
        with pytest.raises(PolicyError):
            parse_policy(
                "policy p { order = view-inclusion }", registry=None
            )
        policy = parse_policy(
            "policy p { order = view-inclusion }", registry=registry
        )
        assert isinstance(policy.order, ViewInclusionOrder)

    def test_neutral_off(self):
        policy = parse_policy("policy p { neutral = off }")
        assert not policy.include_database_citation

    def test_unknown_order_rejected(self):
        with pytest.raises(PolicyError, match="unknown order"):
            parse_policy("policy p { order = alphabetical }")

    def test_bad_syntax_rejected(self):
        for text in (
            "curated { }",                       # missing keyword
            "policy p { dot merge }",            # missing '='
            "policy p { dot = merge",            # missing '}'
            "policy p { } trailing",             # trailing tokens
            "policy p { dot = merge } !",        # bad character
        ):
            with pytest.raises(PolicyError):
                parse_policy(text)

    def test_invalid_interpretation_propagates(self):
        with pytest.raises(PolicyError):
            parse_policy("policy p { dot = sideways }")

    def test_parsed_policy_runs_end_to_end(self, db, registry):
        from repro.citation.generator import CitationEngine
        policy = parse_policy(SPEC, registry=registry)
        engine = CitationEngine(db, registry, policy=policy)
        result = engine.cite(
            'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), '
            'Ty = "gpcr"'
        )
        # best +R with the default-style order keeps only V5.
        polynomials = {tc.polynomial for tc in result.tuples.values()}
        assert len(polynomials) == 1


class TestAnalysis:
    def test_comprehensive_analysis(self):
        policy = parse_policy("policy p { plusR = union }")
        analysis = analyze_policy(policy)
        assert analysis.plus_idempotent
        assert analysis.keeps_all_alternatives
        assert analysis.plan_independent

    def test_focused_analysis(self):
        policy = parse_policy(
            "policy p { plusR = best\n order = fewest-views }"
        )
        analysis = analyze_policy(policy)
        assert analysis.single_citation_possible
        assert not analysis.keeps_all_alternatives

    def test_counted_plus_notes(self):
        policy = parse_policy("policy p { plus = counted }")
        analysis = analyze_policy(policy)
        assert not analysis.plus_idempotent
        assert not analysis.single_citation_possible
        assert any("multiplicities" in note for note in analysis.notes)

    def test_neutral_off_warned(self):
        policy = parse_policy("policy p { neutral = off }")
        analysis = analyze_policy(policy)
        assert any("neutral element" in note for note in analysis.notes)

    def test_describe_renders(self):
        analysis = analyze_policy(parse_policy("policy p { }"))
        text = analysis.describe()
        assert "analysis of policy 'p'" in text
        assert "plan-independent: yes" in text
