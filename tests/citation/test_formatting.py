"""Tests for citation rendering (JSON, text, XML, BibTeX)."""

import json

import pytest

from repro.citation.formatting import (
    render_bibtex,
    render_json,
    render_text,
    render_xml,
)

EX23_QUERY = ('Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), '
              'Ty = "gpcr"')


@pytest.fixture(scope="module")
def result(focused_engine):
    return focused_engine.cite(EX23_QUERY)


class TestJson:
    def test_valid_json(self, result):
        payload = json.loads(render_json(result))
        assert payload["policy"] == "focused"
        assert isinstance(payload["citations"], list)

    def test_include_tuples(self, result):
        payload = json.loads(render_json(result, include_tuples=True))
        assert len(payload["tuples"]) == len(result.tuples)
        first = payload["tuples"][0]
        assert {"tuple", "citations", "polynomial"} <= set(first)

    def test_compact_indent(self, result):
        text = render_json(result, indent=None)
        assert "\n" not in text


class TestText:
    def test_mentions_policy_and_counts(self, result):
        text = render_text(result)
        assert "policy=focused" in text
        assert f"{len(result.tuples)} result tuple(s)" in text

    def test_database_block(self, result):
        text = render_text(result)
        assert "Owner: Tony Harmar" in text

    def test_sources_numbered(self, result):
        text = render_text(result)
        assert "[1]" in text


class TestXml:
    def test_well_formed(self, result):
        import xml.etree.ElementTree as ET
        root = ET.fromstring(render_xml(result))
        assert root.tag == "citation"
        assert root.find("policy").text == "focused"

    def test_special_characters_escaped(self, result):
        import xml.etree.ElementTree as ET
        # Parsing back must preserve the query text (escaping roundtrip).
        root = ET.fromstring(render_xml(result))
        assert "gpcr" in root.find("query").text


class TestDublinCore:
    def test_well_formed(self, result):
        import xml.etree.ElementTree as ET
        from repro.citation.formatting import render_dublin_core
        root = ET.fromstring(render_dublin_core(result))
        assert root.tag.endswith("dc")

    def test_publisher_and_identifier(self, result):
        from repro.citation.formatting import render_dublin_core
        text = render_dublin_core(result)
        assert "<dc:publisher>Tony Harmar</dc:publisher>" in text
        assert "guidetopharmacology.org" in text

    def test_creators_listed(self, result):
        from repro.citation.formatting import render_dublin_core
        assert "<dc:creator>" in render_dublin_core(result)


class TestRis:
    def test_entries_have_required_tags(self, result):
        from repro.citation.formatting import render_ris
        text = render_ris(result)
        assert text.startswith("TY  - DATA")
        assert "ER  - " in text
        assert "AU  - " in text

    def test_version_as_edition(self, result):
        from repro.citation.formatting import render_ris
        assert "ET  - 23" in render_ris(result)

    def test_empty_result_still_produces_entry(self, focused_engine):
        from repro.citation.formatting import render_ris
        empty = focused_engine.cite(
            'Q(N) :- Family(F, N, Ty), Ty = "none"'
        )
        text = render_ris(empty)
        assert "TY  - DATA" in text and "UR  - " in text


class TestBibtex:
    def test_misc_entries(self, result):
        bibtex = render_bibtex(result)
        assert bibtex.startswith("@misc{")

    def test_authors_from_contributors(self, result):
        bibtex = render_bibtex(result)
        assert "author = {" in bibtex

    def test_url_rendered(self, result):
        bibtex = render_bibtex(result)
        assert "\\url{guidetopharmacology.org}" in bibtex
