"""Tests for citation explanations."""


from repro.citation.explain import explain

QUERY = 'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"'


class TestExplain:
    def test_all_rewritings_listed(self, focused_engine):
        result = focused_engine.cite(QUERY)
        explanation = explain(result)
        assert len(explanation.rewritings) == len(result.rewritings)

    def test_absorbed_rewritings_marked(self, focused_engine):
        result = focused_engine.cite(QUERY)
        explanation = explain(result)
        used = [e for e in explanation.rewritings if e.used]
        absorbed = [e for e in explanation.rewritings if not e.used]
        # Focused policy keeps only V5; the other three are absorbed.
        assert len(used) == 1
        assert len(absorbed) == 3
        assert used[0].rewriting.applications[0].view.name == "V5"

    def test_comprehensive_marks_all_used(self, comprehensive_engine):
        result = comprehensive_engine.cite(QUERY)
        explanation = explain(result)
        assert all(e.used for e in explanation.rewritings)

    def test_tuple_credits(self, focused_engine):
        result = focused_engine.cite(QUERY)
        explanation = explain(result)
        for tuple_explanation in explanation.tuples:
            assert tuple_explanation.credited_views == ["V5('gpcr')"]

    def test_base_accesses_reported(self, focused_engine):
        result = focused_engine.cite(
            "Q(N, Pn) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A)"
        )
        explanation = explain(result)
        sample = explanation.tuples[0]
        assert set(sample.base_accesses) == {"FC", "Person"}

    def test_describe_renders(self, focused_engine):
        result = focused_engine.cite(QUERY)
        text = explain(result).describe()
        assert "policy=focused" in text
        assert "USED" in text
        assert "absorbed by preference order" in text

    def test_empty_result_explained(self, focused_engine):
        result = focused_engine.cite(
            'Q(N) :- Family(F, N, Ty), Ty = "none"'
        )
        text = explain(result).describe()
        assert "empty result set" in text

    def test_alternative_count(self, comprehensive_engine):
        result = comprehensive_engine.cite(QUERY)
        explanation = explain(result)
        assert all(
            e.alternative_count >= 2 for e in explanation.tuples
        )
