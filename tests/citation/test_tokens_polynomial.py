"""Tests for citation tokens, monomials, polynomials."""

from repro.citation.polynomial import (
    base_token_count,
    base_tokens,
    idempotent_sum,
    monomial_from_tokens,
    polynomial_from_monomials,
    view_token_count,
    view_tokens,
)
from repro.citation.tokens import BaseRelationToken, ViewCitationToken
from repro.semiring.polynomial import ProvenancePolynomial


def vt(name, *params):
    return ViewCitationToken(name, params)


class TestTokens:
    def test_view_token_identity(self):
        assert vt("V1", "11") == vt("V1", "11")
        assert vt("V1", "11") != vt("V1", "12")
        assert vt("V1") != vt("V2")

    def test_view_vs_base_token(self):
        assert vt("R") != BaseRelationToken("R")

    def test_base_token_identity(self):
        assert BaseRelationToken("R") == BaseRelationToken("R")
        assert BaseRelationToken("R") != BaseRelationToken("S")

    def test_hashable(self):
        tokens = {vt("V1", "11"), vt("V1", "11"), BaseRelationToken("R")}
        assert len(tokens) == 2

    def test_repr(self):
        assert repr(vt("V1", "11")) == "C[V1('11')]"
        assert repr(vt("V3")) == "C[V3]"
        assert repr(BaseRelationToken("FC")) == "C_R[FC]"


class TestMonomialHelpers:
    def test_monomial_from_tokens(self):
        m = monomial_from_tokens([vt("V1", "11"), vt("V2", "11")])
        assert m.degree == 2

    def test_view_and_base_partition(self):
        m = monomial_from_tokens([
            vt("V1", "11"), BaseRelationToken("FC"), BaseRelationToken("FC"),
        ])
        assert view_tokens(m) == [vt("V1", "11")]
        assert base_tokens(m) == [BaseRelationToken("FC")]
        assert view_token_count(m) == 1
        assert base_token_count(m) == 2  # multiplicity counted

    def test_counts_respect_exponents(self):
        m = monomial_from_tokens([vt("V1", "11"), vt("V1", "11")])
        assert view_token_count(m) == 2


class TestPolynomialHelpers:
    def test_polynomial_from_monomials_counts(self):
        m = monomial_from_tokens([vt("V1", "11")])
        p = polynomial_from_monomials([m, m])
        assert p.terms[m] == 2

    def test_idempotent_sum_collapses_coefficients(self):
        m = monomial_from_tokens([vt("V1", "11")])
        p = polynomial_from_monomials([m, m])
        flat = idempotent_sum([p])
        assert flat.terms[m] == 1

    def test_idempotent_sum_unions(self):
        m1 = monomial_from_tokens([vt("V1", "11")])
        m2 = monomial_from_tokens([vt("V2", "11")])
        p1 = polynomial_from_monomials([m1])
        p2 = polynomial_from_monomials([m2, m1])
        combined = idempotent_sum([p1, p2])
        assert set(combined.monomials()) == {m1, m2}

    def test_empty_sum_is_zero(self):
        assert idempotent_sum([]) == ProvenancePolynomial.zero()
