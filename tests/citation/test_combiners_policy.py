"""Tests for record combiners (Example 3.5) and citation policies."""

import pytest

from repro.citation.combiners import (
    agg_merge,
    agg_union,
    dot_merge,
    dot_union,
    plus_merge,
    plus_union,
    with_neutral,
)
from repro.citation.policy import (
    CitationPolicy,
    compact_policy,
    comprehensive_policy,
    default_order,
    focused_policy,
)
from repro.errors import PolicyError

FV1 = {"ID": "11", "Name": "Calcitonin", "Committee": ["Hay", "Poyner"]}
FV2 = {"ID": "11", "Name": "Calcitonin",
       "Text": "The calcitonin peptide family",
       "Contributors": ["Brown", "Smith"]}


class TestDotInterpretations:
    def test_dot_union_keeps_records_apart(self):
        # Example 3.5, first interpretation of ·
        assert dot_union([FV1, FV2]) == [FV1, FV2]

    def test_dot_union_dedupes(self):
        assert dot_union([FV1, FV1]) == [FV1]

    def test_dot_merge_factors_common_fields(self):
        # Example 3.5, second interpretation of ·
        merged = dot_merge([FV1, FV2])
        assert merged == [{
            "ID": "11",
            "Name": "Calcitonin",
            "Committee": ["Hay", "Poyner"],
            "Text": "The calcitonin peptide family",
            "Contributors": ["Brown", "Smith"],
        }]

    def test_dot_merge_empty(self):
        assert dot_merge([]) == []


class TestPlusInterpretations:
    def test_plus_union(self):
        assert plus_union([[FV1], [FV2]]) == [FV1, FV2]

    def test_plus_merge_reproduces_paper_example(self):
        # {ID, Name, Committee:[Hay,Poyner]} +R
        # {ID, Committee:[Brown], Contributors:[Smith]}
        left = {"ID": "11", "Name": "Calcitonin",
                "Committee": ["Hay", "Poyner"]}
        right = {"ID": "11", "Committee": ["Brown"],
                 "Contributors": ["Smith"]}
        merged = plus_merge([[left], [right]])
        assert merged == [{
            "ID": "11",
            "Name": "Calcitonin",
            "Committee": ["Hay", "Poyner", "Brown"],
            "Contributors": ["Smith"],
        }]

    def test_agg_aliases(self):
        assert agg_union([[FV1]]) == [FV1]
        assert agg_merge([[FV1], [FV2]]) == plus_merge([[FV1], [FV2]])


class TestNeutral:
    def test_neutral_prepended(self):
        neutral = [{"Owner": "Tony Harmar"}]
        assert with_neutral([FV1], neutral) == [{"Owner": "Tony Harmar"},
                                                FV1]

    def test_neutral_with_empty_body(self):
        # Def 3.4: the neutral element appears even for empty outputs.
        neutral = [{"Owner": "Tony Harmar"}]
        assert with_neutral([], neutral) == neutral

    def test_neutral_deduped(self):
        neutral = [FV1]
        assert with_neutral([FV1], neutral) == [FV1]


class TestPolicyValidation:
    def test_unknown_dot_rejected(self):
        with pytest.raises(PolicyError):
            CitationPolicy(name="x", dot="nope")

    def test_unknown_plus_rejected(self):
        with pytest.raises(PolicyError):
            CitationPolicy(name="x", plus="nope")

    def test_unknown_plus_r_rejected(self):
        with pytest.raises(PolicyError):
            CitationPolicy(name="x", plus_r="nope")

    def test_unknown_agg_rejected(self):
        with pytest.raises(PolicyError):
            CitationPolicy(name="x", agg="nope")

    def test_best_requires_order(self):
        with pytest.raises(PolicyError):
            CitationPolicy(name="x", plus_r="best", order=None)


class TestShippedPolicies:
    def test_comprehensive(self):
        policy = comprehensive_policy()
        assert policy.plus_r == "union"
        assert policy.order is None
        assert policy.idempotent_plus

    def test_focused(self, registry):
        policy = focused_policy(registry)
        assert policy.plus_r == "best"
        assert policy.order is not None

    def test_compact(self, registry):
        policy = compact_policy(registry)
        assert policy.agg == "merge"

    def test_counted_plus_not_idempotent(self):
        policy = CitationPolicy(name="c", plus="counted")
        assert not policy.idempotent_plus

    def test_default_order_without_registry(self):
        order = default_order(None)
        assert order is not None
