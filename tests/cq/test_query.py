"""Tests for the ConjunctiveQuery class."""

import pytest

from repro.cq.atoms import RelationalAtom
from repro.cq.parser import parse_query
from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Constant, Variable
from repro.errors import ParameterError, UnsafeQueryError


@pytest.fixture
def v1():
    return parse_query("lambda F. V1(F, N, Ty) :- Family(F, N, Ty)")


class TestConstruction:
    def test_duplicate_parameters_rejected(self):
        atom = RelationalAtom("R", [Variable("X")])
        with pytest.raises(ParameterError):
            ConjunctiveQuery("Q", [Variable("X")], [atom], (),
                             [Variable("X"), Variable("X")])

    def test_parameter_must_occur_in_body(self):
        atom = RelationalAtom("R", [Variable("X")])
        with pytest.raises(ParameterError):
            ConjunctiveQuery("Q", [Variable("X")], [atom], (),
                             [Variable("Z")])


class TestInspection:
    def test_variables_ordered(self):
        q = parse_query("Q(B) :- R(A, B), S(B, C)")
        assert [v.name for v in q.variables()] == ["B", "A", "C"]

    def test_existential_variables(self, v1):
        assert [v.name for v in v1.existential_variables()] == []
        q = parse_query("Q(A) :- R(A, B)")
        assert [v.name for v in q.existential_variables()] == ["B"]

    def test_parameters_not_existential(self, v1):
        q = parse_query("lambda B. Q(A) :- R(A, B)")
        assert q.existential_variables() == []

    def test_relation_names(self):
        q = parse_query("Q(A) :- R(A), S(A), R(A)")
        assert q.relation_names() == ["R", "S"]

    def test_constants_collected(self):
        q = parse_query('Q(A) :- R(A, "x"), A != 3')
        consts = q.constants()
        assert Constant("x") in consts and Constant(3) in consts


class TestSafety:
    def test_unsafe_head_rejected(self):
        q = ConjunctiveQuery("Q", [Variable("Z")],
                             [RelationalAtom("R", [Variable("A")])])
        with pytest.raises(UnsafeQueryError):
            q.check_safety()

    def test_unsafe_comparison_rejected(self):
        with pytest.raises(UnsafeQueryError):
            parse_query("Q(A) :- R(A), Z > 3")

    def test_safe_query_passes(self):
        parse_query("Q(A) :- R(A, B), B > 3").check_safety()


class TestInstantiate:
    def test_instantiation_replaces_parameters(self, v1):
        inst = v1.instantiate(["11"])
        assert not inst.is_parameterized
        assert inst.head[0] == Constant("11")
        assert inst.atoms[0].terms[0] == Constant("11")

    def test_wrong_arity_rejected(self, v1):
        with pytest.raises(ParameterError):
            v1.instantiate(["a", "b"])

    def test_unparameterized_instantiate_empty(self):
        q = parse_query("Q(A) :- R(A)")
        assert q.instantiate([]) == q


class TestSubstitute:
    def test_substitute_renames_parameters(self, v1):
        renamed = v1.substitute({Variable("F"): Variable("G")})
        assert [p.name for p in renamed.parameters] == ["G"]

    def test_substitute_drops_constant_parameters(self, v1):
        inst = v1.substitute({Variable("F"): Constant("11")})
        assert inst.parameters == ()

    def test_head_constants_untouched(self):
        q = parse_query('Q(A, "k") :- R(A)')
        result = q.substitute({Variable("A"): Variable("B")})
        assert result.head[1] == Constant("k")


class TestRenameApart:
    def test_rename_avoids_collisions(self, v1):
        renamed, mapping = v1.rename_apart(["F", "N", "Ty"])
        new_names = {v.name for v in renamed.variables()}
        assert not new_names & {"F", "N", "Ty"}
        assert set(mapping) == {Variable("F"), Variable("N"), Variable("Ty")}

    def test_renaming_preserves_shape(self, v1):
        renamed, __ = v1.rename_apart(["F"])
        assert renamed.arity == v1.arity
        assert len(renamed.atoms) == len(v1.atoms)


class TestStructure:
    def test_drop_atom(self):
        q = parse_query("Q(A) :- R(A), S(A)")
        assert len(q.drop_atom(0).atoms) == 1
        assert q.drop_atom(0).atoms[0].relation == "S"

    def test_drop_comparison(self):
        q = parse_query("Q(A) :- R(A), A > 1, A < 5")
        assert len(q.drop_comparison(0).comparisons) == 1

    def test_equality_ignores_comparison_order(self):
        q1 = parse_query("Q(A) :- R(A), A > 1, A < 5")
        q2 = parse_query("Q(A) :- R(A), A < 5, A > 1")
        assert q1 == q2

    def test_equality_sensitive_to_atom_order(self):
        q1 = parse_query("Q(A) :- R(A), S(A)")
        q2 = parse_query("Q(A) :- S(A), R(A)")
        assert q1 != q2  # syntactic equality; use are_equivalent otherwise

    def test_signature_invariant_under_renaming(self):
        q1 = parse_query('Q(A) :- R(A, B), B = "x"')
        q2 = parse_query('Q(C) :- R(C, D), D = "x"')
        assert q1.signature() == q2.signature()

    def test_signature_differs_on_relations(self):
        q1 = parse_query("Q(A) :- R(A)")
        q2 = parse_query("Q(A) :- S(A)")
        assert q1.signature() != q2.signature()

    def test_repr_roundtrips_through_parser(self):
        q = parse_query('lambda Ty. V(F, N, Ty) :- Family(F, N, Ty), F != "9"')
        assert parse_query(repr(q)) == q
