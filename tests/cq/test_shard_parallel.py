"""Tests for shard-parallel scans & probes and projected process payloads."""

import pytest

from repro.citation.generator import CitationEngine
from repro.cq.executor import execute_plan
from repro.cq.parallel import (
    SHIPPING,
    _storage_seed_step,
    execute_plan_parallel,
)
from repro.cq.parser import parse_query
from repro.cq.plan import plan_query
from repro.gtopdb.sample import paper_database
from repro.gtopdb.views import paper_views
from repro.relational.database import Database
from repro.relational.schema import RelationSchema, Schema
from repro.views.registry import ViewRegistry
from repro.workload.runner import run_workload


@pytest.fixture
def sharded_db():
    schema = Schema([
        RelationSchema("Big", ["a", "b"]),
        RelationSchema("Small", ["b", "c"]),
        RelationSchema("Junk", ["x", "y"]),  # never referenced by queries
    ])
    db = Database(schema, shards=4)
    db.insert_batch({
        "Big": [(i, i % 30) for i in range(300)],
        "Small": [(b, b * 2) for b in range(30)],
        "Junk": [(i, i) for i in range(500)],
    })
    return db


SCAN_QUERY = "Q(A, C) :- Big(A, B), Small(B, C)"
PROBE_QUERY = "Q(A, C) :- Big(A, 5), Small(5, C)"


def _serial(plan, db):
    return list(execute_plan(plan, db))


class TestStorageSeedEligibility:
    def test_scan_and_probe_first_steps_are_eligible(self, sharded_db):
        for text in (SCAN_QUERY, PROBE_QUERY):
            plan = plan_query(parse_query(text), sharded_db)
            if plan.steps[0].atom.relation == "Big":
                assert _storage_seed_step(plan, sharded_db, 1) is not None

    def test_range_first_step_is_not_eligible(self, sharded_db):
        q = parse_query("Q(A, C) :- Big(A, B), Small(B, C), A >= 50, A < 60")
        plan = plan_query(q, sharded_db)
        assert plan.steps[0].range_position is not None
        assert _storage_seed_step(plan, sharded_db, 1) is None

    def test_unsharded_relation_is_not_eligible(self, sharded_db):
        sharded_db.reshard(1)
        plan = plan_query(parse_query(SCAN_QUERY), sharded_db)
        assert _storage_seed_step(plan, sharded_db, 1) is None

    def test_small_relation_falls_back(self, sharded_db):
        plan = plan_query(parse_query(SCAN_QUERY), sharded_db)
        assert _storage_seed_step(plan, sharded_db, 10_000) is None


class TestStorageShardedExecution:
    @pytest.mark.parametrize("text", [SCAN_QUERY, PROBE_QUERY])
    @pytest.mark.parametrize("parallelism", [2, 3, 8])
    def test_threads_order_exact(self, sharded_db, text, parallelism):
        plan = plan_query(parse_query(text), sharded_db)
        parallel = list(execute_plan_parallel(
            plan, sharded_db, parallelism=parallelism, min_partition=1
        ))
        assert parallel == _serial(plan, sharded_db)

    @pytest.mark.parametrize("text", [SCAN_QUERY, PROBE_QUERY])
    def test_processes_order_exact(self, sharded_db, text):
        plan = plan_query(parse_query(text), sharded_db)
        parallel = list(execute_plan_parallel(
            plan,
            sharded_db,
            parallelism=3,
            use_processes=True,
            min_partition=1,
        ))
        assert parallel == _serial(plan, sharded_db)

    def test_self_join_ships_seed_relation_for_suffix(self, sharded_db):
        q = parse_query("Q(A, X) :- Big(A, B), Big(B, X)")
        plan = plan_query(q, sharded_db)
        parallel = list(execute_plan_parallel(
            plan,
            sharded_db,
            parallelism=3,
            use_processes=True,
            min_partition=1,
        ))
        assert parallel == _serial(plan, sharded_db)

    def test_nan_probe_yields_nothing(self, sharded_db):
        q = parse_query("Q(A, C) :- Big(A, nan), Small(nan, C)")
        try:
            plan = plan_query(q, sharded_db)
        except Exception:
            pytest.skip("parser does not accept NaN literals")
        parallel = list(execute_plan_parallel(
            plan, sharded_db, parallelism=3, min_partition=1
        ))
        assert parallel == _serial(plan, sharded_db)

    def test_virtual_suffix_relations_ship(self, sharded_db):
        virtual = {"V": [(b, b + 100) for b in range(30)]}
        q = parse_query("Q(A, X) :- Big(A, B), V(B, X)")
        plan = plan_query(q, sharded_db, virtual)
        for use_processes in (False, True):
            parallel = list(execute_plan_parallel(
                plan,
                sharded_db,
                virtual,
                parallelism=3,
                use_processes=use_processes,
                min_partition=1,
            ))
            assert parallel == list(execute_plan(plan, sharded_db, virtual))


class TestShippedBytes:
    def test_projected_shipping_beats_world_shipping(self, sharded_db):
        plan = plan_query(parse_query(SCAN_QUERY), sharded_db)
        SHIPPING.reset()
        projected = list(execute_plan_parallel(
            plan,
            sharded_db,
            parallelism=4,
            use_processes=True,
            min_partition=1,
        ))
        projected_bytes = SHIPPING.shipped_bytes
        assert SHIPPING.payloads >= 2
        SHIPPING.reset()
        world = list(execute_plan_parallel(
            plan,
            sharded_db,
            parallelism=4,
            use_processes=True,
            min_partition=1,
            shipping="world",
        ))
        world_bytes = SHIPPING.shipped_bytes
        SHIPPING.reset()
        assert projected == world == _serial(plan, sharded_db)
        # The whole-database pickle carries Junk (500 rows) and every
        # index/statistics structure to each of the 4 workers; the
        # projection ships only the suffix relation plus shard slices.
        assert projected_bytes * 2 < world_bytes

    def test_thread_execution_ships_nothing(self, sharded_db):
        plan = plan_query(parse_query(SCAN_QUERY), sharded_db)
        SHIPPING.reset()
        list(execute_plan_parallel(
            plan, sharded_db, parallelism=4, min_partition=1
        ))
        assert SHIPPING.shipped_bytes == 0


class TestKnobPlumbing:
    def test_engine_constructor_and_cite_batch_reshard(self):
        db = paper_database()
        registry = ViewRegistry(db.schema, paper_views())
        engine = CitationEngine(db, registry, shards=3)
        assert engine.shards == 3
        assert db.shards == 3
        reference = CitationEngine(paper_database(), ViewRegistry(
            db.schema, paper_views()
        )).cite('Q(N) :- Family(F, N, Ty), Ty = "gpcr"')
        result = engine.cite('Q(N) :- Family(F, N, Ty), Ty = "gpcr"')
        assert result.citation() == reference.citation()
        engine.cite_batch(["Q(N) :- Family(F, N, Ty)"], shards=5)
        assert db.shards == 5

    def test_run_workload_reports_shards(self):
        db = paper_database()
        registry = ViewRegistry(db.schema, paper_views())
        engine = CitationEngine(db, registry)
        report = run_workload(
            engine,
            ['Q(N) :- Family(F, N, Ty), Ty = "gpcr"'],
            parallelism=2,
            shards=4,
        )
        assert report.shards == 4
        assert "shards=4" in report.describe()
        assert db.shards == 4

    def test_cli_flag_is_wired(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["cite-batch", "p.json", "q.txt", "--shards", "8"]
        )
        assert args.shards == 8
