"""Tests for the shard-and-merge parallel executor (repro.cq.parallel)."""

import warnings
from collections import Counter

import pytest

from repro.citation.generator import CitationEngine
from repro.cq.evaluation import enumerate_bindings
from repro.cq.executor import execute_plan
from repro.cq.parallel import execute_plan_parallel, partition_bindings
from repro.cq.parser import parse_query
from repro.cq.plan import plan_query
from repro.errors import MixedTypeComparisonWarning, QueryError
from repro.gtopdb.sample import paper_database
from repro.gtopdb.views import paper_views
from repro.relational.database import Database
from repro.relational.schema import RelationSchema, Schema
from repro.relational.statistics import shard_cardinalities
from repro.views.registry import ViewRegistry
from repro.workload.runner import run_workload


@pytest.fixture
def joined_db():
    """Big fans out over Small: hundreds of first-step bindings."""
    schema = Schema([
        RelationSchema("Big", ["a", "b"]),
        RelationSchema("Small", ["b", "c"]),
    ])
    db = Database(schema)
    db.insert_batch({
        "Big": [(i, i % 30) for i in range(300)],
        "Small": [(b, b * 2) for b in range(30)],
    })
    return db


JOIN_QUERY = "Q(A, C) :- Big(A, B), Small(B, C)"


def _serial(plan, db, virtual=None):
    return list(execute_plan(plan, db, virtual))


class TestShardCardinalities:
    def test_balanced_and_complete(self):
        assert shard_cardinalities(10, 4) == [3, 3, 2, 2]
        assert shard_cardinalities(3, 5) == [1, 1, 1, 0, 0]
        assert shard_cardinalities(0, 3) == [0, 0, 0]
        assert sum(shard_cardinalities(97, 8)) == 97

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError):
            shard_cardinalities(5, 0)

    def test_partition_drops_empty_shards(self):
        seeds = [{"s": i} for i in range(3)]
        shards = partition_bindings(seeds, 8)
        assert [len(s) for s in shards] == [1, 1, 1]
        assert [b for shard in shards for b in shard] == seeds


class TestThreadEquivalence:
    @pytest.mark.parametrize("parallelism", [2, 3, 8])
    def test_order_exact_match_with_serial(self, joined_db, parallelism):
        plan = plan_query(parse_query(JOIN_QUERY), joined_db)
        parallel = list(execute_plan_parallel(
            plan, joined_db, parallelism=parallelism, min_partition=1
        ))
        assert parallel == _serial(plan, joined_db)

    def test_more_shards_than_seeds(self, joined_db):
        q = parse_query("Q(C, A) :- Small(B, C), Big(A, B)")
        plan = plan_query(q, joined_db)
        parallel = list(execute_plan_parallel(
            plan, joined_db, parallelism=64, min_partition=1
        ))
        assert parallel == _serial(plan, joined_db)

    def test_virtual_relations_shared_across_workers(self, joined_db):
        virtual = {"V": [(b, b + 100) for b in range(30)]}
        q = parse_query("Q(A, X) :- Big(A, B), V(B, X)")
        plan = plan_query(q, joined_db, virtual)
        parallel = list(execute_plan_parallel(
            plan, joined_db, virtual, parallelism=3, min_partition=1
        ))
        assert parallel == _serial(plan, joined_db, virtual)
        assert len(parallel) == 300

    def test_residual_comparisons_filter_in_workers(self, joined_db):
        q = parse_query("Q(A, C) :- Big(A, B), Small(B, C), A < C")
        plan = plan_query(q, joined_db)
        parallel = list(execute_plan_parallel(
            plan, joined_db, parallelism=4, min_partition=1
        ))
        assert parallel == _serial(plan, joined_db)

    @pytest.mark.parametrize("use_processes", [False, True])
    def test_range_pushed_plans_shard_unchanged(self, joined_db,
                                                use_processes):
        """A plan whose first step is an ordered access path partitions
        and merges exactly like any other (order included)."""
        q = parse_query("Q(A, C) :- Big(A, B), Small(B, C), A >= 50, A < 60")
        plan = plan_query(q, joined_db)
        assert plan.steps[0].range_position is not None
        assert plan.pushed_ranges
        parallel = list(execute_plan_parallel(
            plan,
            joined_db,
            parallelism=3,
            use_processes=use_processes,
            min_partition=1,
        ))
        assert parallel == _serial(plan, joined_db)
        assert len(parallel) == 10

    def test_mixed_type_warning_propagates_from_workers(self, joined_db):
        q = parse_query('Q(A) :- Big(A, B), Small(B, C), C < "zzz"')
        plan = plan_query(q, joined_db)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = list(execute_plan_parallel(
                plan, joined_db, parallelism=3, min_partition=1
            ))
        assert result == []
        assert any(
            issubclass(w.category, MixedTypeComparisonWarning)
            for w in caught
        )

    def test_worker_errors_propagate(self, joined_db):
        plan_virtual = {"V": [(b, b) for b in range(400)]}
        bad_virtual = {"V": [(b,) for b in range(400)]}
        q = parse_query("Q(A, X) :- Big(A, B), V(B, X)")
        plan = plan_query(q, joined_db, plan_virtual)
        assert plan.steps[0].atom.relation == "Big"
        with pytest.raises(QueryError):
            list(execute_plan_parallel(
                plan, joined_db, bad_virtual, parallelism=2, min_partition=1
            ))


class TestFallbacks:
    def test_parallelism_one_is_serial(self, joined_db):
        plan = plan_query(parse_query(JOIN_QUERY), joined_db)
        assert list(execute_plan_parallel(
            plan, joined_db, parallelism=1
        )) == _serial(plan, joined_db)

    def test_single_step_plan_is_serial(self, joined_db):
        plan = plan_query(parse_query("Q(A, B) :- Big(A, B)"), joined_db)
        assert len(plan.steps) == 1
        assert list(execute_plan_parallel(
            plan, joined_db, parallelism=4, min_partition=1
        )) == _serial(plan, joined_db)

    def test_empty_plan_yields_nothing(self, joined_db):
        plan = plan_query(parse_query("Q(A) :- Big(A, B), 1 = 2"), joined_db)
        assert plan.empty
        assert list(execute_plan_parallel(
            plan, joined_db, parallelism=4, min_partition=1
        )) == []

    def test_small_seed_count_falls_back_to_serial(self, joined_db):
        # Default min_partition far exceeds the 30 Small rows.
        q = parse_query("Q(C, A) :- Small(B, C), Big(A, B)")
        plan = plan_query(q, joined_db)
        assert list(execute_plan_parallel(
            plan, joined_db, parallelism=4
        )) == _serial(plan, joined_db)

    def test_empty_first_step(self, joined_db):
        q = parse_query("Q(A, C) :- Big(A, B), Small(B, C), Big(A, 999)")
        plan = plan_query(q, joined_db)
        assert list(execute_plan_parallel(
            plan, joined_db, parallelism=2, min_partition=1
        )) == []


class TestEarlyAbandonment:
    def test_closing_the_iterator_stops_workers(self, joined_db):
        import threading

        plan = plan_query(parse_query(JOIN_QUERY), joined_db)
        before = threading.active_count()
        stream = execute_plan_parallel(
            plan, joined_db, parallelism=4, min_partition=1
        )
        first = next(stream)
        assert first
        stream.close()  # GeneratorExit -> cancellation flag -> join
        assert threading.active_count() == before

    def test_close_mid_stream_sets_cancel_event_and_joins_threads(
        self, joined_db, monkeypatch
    ):
        """Regression: abandoning the thread-pool iterator mid-stream
        must set the cancel event (so workers stop filling the unbounded
        merge queue) and join every worker before close() returns."""
        import threading

        events = []
        real_event = threading.Event

        def recording_event():
            event = real_event()
            events.append(event)
            return event

        monkeypatch.setattr(threading, "Event", recording_event)
        plan = plan_query(parse_query(JOIN_QUERY), joined_db)
        before = threading.active_count()
        stream = execute_plan_parallel(
            plan, joined_db, parallelism=4, min_partition=1
        )
        next(stream)
        # The cancel event is created before the worker threads (whose
        # construction also makes Events), so it is the first recorded.
        assert events, "thread driver should have created a cancel event"
        cancel = events[0]
        assert not cancel.is_set()
        stream.close()
        assert cancel.is_set()
        assert threading.active_count() == before

    def test_close_mid_stream_shuts_down_process_pool(self, joined_db):
        """Abandoning the process-pool iterator cancels pending shards
        and shuts the pool down promptly (no orphaned child processes)."""
        import multiprocessing
        import time

        plan = plan_query(parse_query(JOIN_QUERY), joined_db)
        stream = execute_plan_parallel(
            plan,
            joined_db,
            parallelism=2,
            use_processes=True,
            min_partition=1,
        )
        assert next(stream)
        stream.close()
        deadline = time.monotonic() + 10
        while multiprocessing.active_children():
            assert time.monotonic() < deadline, (
                "process-pool workers still alive after close()"
            )
            time.sleep(0.05)


class TestProcessPool:
    def test_results_match_serial(self, joined_db):
        plan = plan_query(parse_query(JOIN_QUERY), joined_db)
        parallel = list(execute_plan_parallel(
            plan,
            joined_db,
            parallelism=2,
            use_processes=True,
            min_partition=1,
        ))
        assert parallel == _serial(plan, joined_db)


class TestFacadeAndEngine:
    def test_enumerate_bindings_parallelism_param(self, joined_db):
        q = parse_query(JOIN_QUERY)
        parallel = Counter(
            tuple(sorted((v.name, value) for v, value in b.items()))
            for b in enumerate_bindings(q, joined_db, parallelism=3)
        )
        serial = Counter(
            tuple(sorted((v.name, value) for v, value in b.items()))
            for b in enumerate_bindings(q, joined_db)
        )
        assert parallel == serial

    def test_cite_batch_parallel_equals_serial(self):
        queries = [
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr"',
            "Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)",
            "Q(Pn) :- FC(F, C), Person(C, Pn, A)",
        ]
        db = paper_database()
        registry = ViewRegistry(db.schema, paper_views())
        serial = CitationEngine(db, registry).cite_batch(queries)
        parallel_engine = CitationEngine(db, registry)
        parallel = parallel_engine.cite_batch(queries, parallelism=4)
        assert parallel_engine.parallelism == 4
        for left, right in zip(serial, parallel):
            assert left.citation() == right.citation()
            assert left.aggregate_polynomial == right.aggregate_polynomial

    def test_run_workload_reports_parallelism(self):
        db = paper_database()
        registry = ViewRegistry(db.schema, paper_views())
        engine = CitationEngine(db, registry)
        report = run_workload(
            engine,
            ['Q(N) :- Family(F, N, Ty), Ty = "gpcr"'],
            parallelism=2,
        )
        assert report.parallelism == 2
        assert "parallelism=2" in report.describe()
        assert engine.parallelism == 2

    def test_engine_constructor_knob(self, joined_db):
        db = paper_database()
        registry = ViewRegistry(db.schema, paper_views())
        engine = CitationEngine(db, registry, parallelism=3)
        result = engine.cite('Q(N) :- Family(F, N, Ty), Ty = "gpcr"')
        reference = CitationEngine(db, registry).cite(
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr"'
        )
        assert result.citation() == reference.citation()
