"""Tests for the cost-based planner (repro.cq.plan) and the executor."""

import warnings
from collections import Counter

import pytest

from repro.cq.atoms import ComparisonAtom, RelationalAtom
from repro.cq.canonical import canonical_key, canonicalize
from repro.cq.evaluation import enumerate_bindings, reference_bindings
from repro.cq.executor import IndexedVirtualRelations, execute_plan
from repro.cq.parser import parse_query
from repro.cq.plan import QueryPlanner, plan_query
from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Constant, Variable
from repro.errors import MixedTypeComparisonWarning, QueryError
from repro.relational.database import Database
from repro.relational.expressions import ComparisonOp
from repro.relational.schema import RelationSchema, Schema


def _multiset(bindings):
    return Counter(
        tuple(sorted((var.name, value) for var, value in b.items()))
        for b in bindings
    )


@pytest.fixture
def skewed_db():
    """Big(a, b) is 200 rows; Small(b, c) is 2 rows."""
    schema = Schema([
        RelationSchema("Big", ["a", "b"]),
        RelationSchema("Small", ["b", "c"]),
    ])
    db = Database(schema)
    db.insert_all("Big", [(i, i % 50) for i in range(200)])
    db.insert_all("Small", [(1, 100), (2, 200)])
    return db


class TestCostModel:
    def test_small_relation_joined_first(self, skewed_db):
        q = parse_query("Q(A, C) :- Big(A, B), Small(B, C)")
        plan = plan_query(q, skewed_db)
        assert [step.atom.relation for step in plan.steps] == \
            ["Small", "Big"]

    def test_first_step_estimate_is_cardinality(self, skewed_db):
        q = parse_query("Q(A, C) :- Big(A, B), Small(B, C)")
        plan = plan_query(q, skewed_db)
        assert plan.steps[0].estimated_matches == 2.0

    def test_join_step_uses_average_fanout(self, skewed_db):
        # Big has 200 rows over 50 distinct b-values: 4 rows per probe.
        q = parse_query("Q(A, C) :- Big(A, B), Small(B, C)")
        plan = plan_query(q, skewed_db)
        assert plan.steps[1].estimated_matches == pytest.approx(4.0)

    def test_constant_selectivity_is_exact(self, skewed_db):
        q = parse_query("Q(B) :- Big(7, B)")
        plan = plan_query(q, skewed_db)
        # Exactly one row has a = 7.
        assert plan.steps[0].estimated_matches == pytest.approx(1.0)

    def test_empty_relation_ordered_first_and_zero_bindings(self):
        schema = Schema([
            RelationSchema("Big", ["a", "b"]),
            RelationSchema("Empty", ["b", "c"]),
        ])
        db = Database(schema)
        db.insert_all("Big", [(i, i) for i in range(50)])
        q = parse_query("Q(A, C) :- Big(A, B), Empty(B, C)")
        plan = plan_query(q, db)
        assert plan.steps[0].atom.relation == "Empty"
        assert plan.estimated_bindings == 0.0

    def test_cross_product_ordered_small_first(self, skewed_db):
        q = parse_query("Q(A, C) :- Big(A, B1), Small(B2, C)")
        plan = plan_query(q, skewed_db)
        assert plan.steps[0].atom.relation == "Small"


class TestAccessPaths:
    def test_bound_positions_become_index_lookup(self, skewed_db):
        q = parse_query("Q(A, C) :- Big(A, B), Small(B, C)")
        plan = plan_query(q, skewed_db)
        join = plan.steps[1]
        assert join.lookup_positions == (1,)
        assert join.lookup_terms == (Variable("B"),)

    def test_repeated_new_variable_checked_residually(self, skewed_db):
        q = parse_query("Q(A) :- Big(A, A)")
        plan = plan_query(q, skewed_db)
        assert plan.steps[0].equal_positions == ((0, 1),)
        assert plan.steps[0].introduces == ((Variable("A"), 0),)

    def test_comparisons_scheduled_at_binding_step(self, skewed_db):
        q = parse_query("Q(A, C) :- Big(A, B), Small(B, C), A < C")
        plan = plan_query(q, skewed_db)
        # A < C is only checkable once both atoms have fired.
        assert not plan.steps[0].comparisons
        assert len(plan.steps[1].comparisons) == 1


class TestComparisonPushdown:
    def test_constant_equality_becomes_bound_position(self, skewed_db):
        q = parse_query("Q(A) :- Big(A, B), B = 7")
        plan = plan_query(q, skewed_db)
        step = plan.steps[0]
        assert step.lookup_positions == (1,)
        assert step.lookup_terms == (Constant(7),)
        assert step.comparisons == ()
        assert plan.pushed == (ComparisonAtom(
            Variable("B"), ComparisonOp.EQ, Constant(7)
        ),)

    def test_pushed_variable_still_appears_in_bindings(self, skewed_db):
        q = parse_query("Q(A) :- Big(A, B), B = 7")
        bindings = list(enumerate_bindings(q, skewed_db))
        assert bindings and all(b[Variable("B")] == 7 for b in bindings)
        assert _multiset(bindings) == _multiset(
            reference_bindings(q, skewed_db)
        )

    def test_transitive_constant_reaches_every_class_member(self, skewed_db):
        q = parse_query("Q(A, C) :- Big(A, B), Small(D, C), B = D, D = 1")
        plan = plan_query(q, skewed_db)
        for step in plan.steps:
            assert step.lookup_positions == (0 if
                                             step.atom.relation == "Small"
                                             else 1,)
            assert step.lookup_terms == (Constant(1),)
        # Both equalities are folded into the probes; only the var-var
        # link keeps its residual re-check (NaN-safe == semantics).
        assert len(plan.pushed) == 2
        residual = [c for step in plan.steps for c in step.comparisons]
        assert [repr(c) for c in residual] == ["B = D"]
        assert _multiset(enumerate_bindings(q, skewed_db)) == _multiset(
            reference_bindings(q, skewed_db)
        )

    def test_variable_equality_probes_with_bound_member(self, skewed_db):
        q = parse_query("Q(A, C) :- Big(A, B), Small(D, C), B = D")
        plan = plan_query(q, skewed_db)
        # Small (2 rows) goes first and binds D; Big probes with it.  The
        # equality is still re-checked residually (probe matching is
        # identity-or-equality; only == preserves NaN semantics).
        assert plan.steps[0].atom.relation == "Small"
        big = plan.steps[1]
        assert big.lookup_positions == (1,)
        assert big.lookup_terms == (Variable("D"),)
        assert len(big.comparisons) == 1
        assert plan.pushed
        assert _multiset(enumerate_bindings(q, skewed_db)) == _multiset(
            reference_bindings(q, skewed_db)
        )

    def test_class_mates_met_in_one_atom_check_same_row(self, skewed_db):
        q = parse_query("Q(A, B) :- Big(A, B), A = B")
        plan = plan_query(q, skewed_db)
        step = plan.steps[0]
        assert step.equal_positions == ((0, 1),)
        assert set(step.introduces) == {(Variable("A"), 0),
                                        (Variable("B"), 1)}
        assert _multiset(enumerate_bindings(q, skewed_db)) == _multiset(
            reference_bindings(q, skewed_db)
        )

    def test_nan_constant_equality_stays_residual(self, skewed_db):
        # Probing a hash index with NaN could match rows by object
        # identity; == never does, so the comparison must not be pushed.
        nan = float("nan")
        skewed_db.insert("Big", 999, nan)
        b = Variable("B")
        q = ConjunctiveQuery(
            "Q",
            [Variable("A")],
            [RelationalAtom("Big", [Variable("A"), b])],
            [ComparisonAtom(b, ComparisonOp.EQ, Constant(nan))],
        )
        plan = plan_query(q, skewed_db)
        assert plan.pushed == ()
        assert list(enumerate_bindings(q, skewed_db)) == []
        assert list(reference_bindings(q, skewed_db)) == []

    def test_nan_bound_probe_value_matches_nothing(self):
        """Regression: a duplicated atom re-probes the hash index with an
        already-bound NaN value, which a dict bucket matches by object
        identity — and repeats of bound variables carry no residual
        re-check.  The executor must skip NaN probes entirely, like the
        reference evaluator's == join."""
        nan = float("nan")
        schema = Schema([
            RelationSchema("R", ["a", "b"]),
            RelationSchema("S", ["a", "c"]),
        ])
        db = Database(schema)
        db.insert_all("R", [(1, nan)])
        db.insert_all("S", [(1, "a")])
        q = parse_query('Q(C) :- R(X, Y), S(X, C), R(X, Y), C < "b"')
        assert list(reference_bindings(q, db)) == []
        assert list(enumerate_bindings(q, db)) == []

    def test_nan_values_rejected_by_variable_equality(self):
        # The var-var probe may hit the NaN row via object identity; the
        # residual re-check must reject it, matching the reference.
        nan = float("nan")
        schema = Schema([
            RelationSchema("R", ["a", "b"]),
            RelationSchema("S", ["b", "c"]),
        ])
        db = Database(schema)
        db.insert_all("R", [(1, nan), (2, 5)])
        db.insert_all("S", [(nan, 10), (5, 20)])
        q = parse_query("Q(A, C) :- R(A, B), S(D, C), B = D")
        planned = _multiset(enumerate_bindings(q, db))
        assert planned == _multiset(reference_bindings(q, db))
        assert sum(planned.values()) == 1  # only the 5 = 5 join survives

    def test_contradictory_constants_short_circuit(self, skewed_db):
        q = parse_query("Q(A) :- Big(A, B), B = 1, B = 2")
        plan = plan_query(q, skewed_db)
        assert plan.empty
        assert "contradictory equality comparisons" in plan.explain()
        assert list(enumerate_bindings(q, skewed_db)) == []
        assert list(reference_bindings(q, skewed_db)) == []

    def test_value_equal_constants_are_not_contradictory(self, skewed_db):
        # X = 1 and X = 1.0 are jointly satisfiable (1 == 1.0); probing
        # with either constant finds the same rows.
        b = Variable("B")
        q = ConjunctiveQuery(
            "Q",
            [Variable("A")],
            [RelationalAtom("Big", [Variable("A"), b])],
            [
                ComparisonAtom(b, ComparisonOp.EQ, Constant(1)),
                ComparisonAtom(b, ComparisonOp.EQ, Constant(1.0)),
            ],
        )
        plan = plan_query(q, skewed_db)
        assert not plan.empty
        assert _multiset(enumerate_bindings(q, skewed_db)) == _multiset(
            reference_bindings(q, skewed_db)
        )

    def test_order_comparisons_push_to_ordered_path_and_stay_residual(
        self, skewed_db
    ):
        q = parse_query("Q(A) :- Big(A, B), B < 5")
        plan = plan_query(q, skewed_db)
        assert plan.pushed == ()
        assert plan.pushed_ranges == (ComparisonAtom(
            Variable("B"), ComparisonOp.LT, Constant(5)
        ),)
        # The bisect probe narrows; the residual re-check stays for
        # exact reference semantics.
        assert plan.steps[0].range_position == 1
        assert len(plan.steps[0].comparisons) == 1

    def test_self_equality_stays_residual(self, skewed_db):
        q = parse_query("Q(A) :- Big(A, B), A = A")
        plan = plan_query(q, skewed_db)
        assert plan.pushed == ()
        assert len(plan.steps[0].comparisons) == 1

    def test_pushdown_survives_plan_cache_rebinding(self, skewed_db):
        planner = QueryPlanner(skewed_db)
        planner.plan(parse_query("Q(A) :- Big(A, B), B = 7"))
        rebound = planner.plan(parse_query("Q(X) :- Big(X, Y), Y = 7"))
        assert planner.hits == 1
        assert rebound.steps[0].lookup_terms == (Constant(7),)
        assert rebound.pushed == (ComparisonAtom(
            Variable("Y"), ComparisonOp.EQ, Constant(7)
        ),)
        bindings = list(execute_plan(rebound, skewed_db))
        assert bindings and all(b[Variable("Y")] == 7 for b in bindings)


class TestRangePushdown:
    """The interval closure and its ordered access paths."""

    def test_bounds_merge_into_one_interval(self, skewed_db):
        q = parse_query("Q(A) :- Big(A, B), B >= 10, B < 20, B >= 5")
        plan = plan_query(q, skewed_db)
        step = plan.steps[0]
        assert step.range_position == 1
        assert step.range_interval.lo == 10
        assert not step.range_interval.lo_open
        assert step.range_interval.hi == 20
        assert step.range_interval.hi_open
        assert len(plan.pushed_ranges) == 3

    def test_strict_bound_wins_over_inclusive_at_same_value(self, skewed_db):
        q = parse_query("Q(A) :- Big(A, B), B <= 20, B < 20")
        plan = plan_query(q, skewed_db)
        interval = plan.steps[0].range_interval
        assert interval.hi == 20 and interval.hi_open

    def test_flipped_comparison_is_normalized(self, skewed_db):
        # 20 > B is B < 20.
        q = parse_query("Q(A) :- Big(A, B), 20 > B")
        plan = plan_query(q, skewed_db)
        interval = plan.steps[0].range_interval
        assert interval.hi == 20 and interval.hi_open

    def test_range_results_match_reference(self, skewed_db):
        q = parse_query("Q(A, B) :- Big(A, B), B >= 10, B < 20")
        assert _multiset(enumerate_bindings(q, skewed_db)) == _multiset(
            reference_bindings(q, skewed_db)
        )

    def test_empty_interval_short_circuits(self, skewed_db):
        q = parse_query("Q(A) :- Big(A, B), B < 2, B > 5")
        plan = plan_query(q, skewed_db)
        assert plan.empty
        assert "empty range interval" in plan.explain()
        assert list(enumerate_bindings(q, skewed_db)) == []
        assert list(reference_bindings(q, skewed_db)) == []

    def test_point_interval_with_open_end_is_empty(self, skewed_db):
        q = parse_query("Q(A) :- Big(A, B), B >= 2, B < 2")
        assert plan_query(q, skewed_db).empty

    def test_equality_constant_outside_interval_is_empty(self, skewed_db):
        q = parse_query("Q(A) :- Big(A, B), B = 30, B < 20")
        plan = plan_query(q, skewed_db)
        assert plan.empty
        assert list(enumerate_bindings(q, skewed_db)) == []

    def test_equality_constant_inside_interval_probes_hash_index(
        self, skewed_db
    ):
        q = parse_query("Q(A) :- Big(A, B), B = 7, B < 20")
        plan = plan_query(q, skewed_db)
        step = plan.steps[0]
        assert step.lookup_positions == (1,)
        assert step.range_position is None
        assert _multiset(enumerate_bindings(q, skewed_db)) == _multiset(
            reference_bindings(q, skewed_db)
        )

    def test_interval_propagates_through_equality_closure(self, skewed_db):
        # D < 2 tightens the whole {B, D} class, so the class's first
        # step probes an ordered index even though only D is named.
        q = parse_query("Q(A, C) :- Big(A, B), Small(D, C), B = D, D < 2")
        plan = plan_query(q, skewed_db)
        first = plan.steps[0]
        assert first.atom.relation == "Small"
        assert first.range_position == 0
        assert first.range_interval.hi == 2
        assert _multiset(enumerate_bindings(q, skewed_db)) == _multiset(
            reference_bindings(q, skewed_db)
        )

    def test_class_interval_counted_once_per_atom(self):
        # X = Y share one interval; pricing it per occurrence would
        # square the selectivity and underestimate the step.
        schema = Schema([RelationSchema("R", ["a", "b"])])
        db = Database(schema)
        db.insert_all("R", [(i, i) for i in range(100)])
        q = parse_query("Q(X, Y) :- R(X, Y), X = Y, Y < 50")
        plan = plan_query(q, db)
        assert plan.steps[0].estimated_matches == pytest.approx(50.0, rel=0.1)

    def test_incomparable_bounds_not_absorbed(self, skewed_db):
        b = Variable("B")
        q = ConjunctiveQuery(
            "Q",
            [Variable("A")],
            [RelationalAtom("Big", [Variable("A"), b])],
            [
                ComparisonAtom(b, ComparisonOp.GT, Constant(1)),
                ComparisonAtom(b, ComparisonOp.LT, Constant("a")),
            ],
        )
        plan = plan_query(q, skewed_db)
        # Only the comparable bound is pushed; the str bound stays
        # residual-only so the interval never mixes types.
        assert len(plan.pushed_ranges) == 1
        interval = plan.steps[0].range_interval
        assert interval.lo == 1 and interval.hi is None
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            planned = _multiset(enumerate_bindings(q, skewed_db))
        assert planned == _multiset(reference_bindings(q, skewed_db))

    def test_nan_bound_stays_residual(self, skewed_db):
        nan = float("nan")
        b = Variable("B")
        q = ConjunctiveQuery(
            "Q",
            [Variable("A")],
            [RelationalAtom("Big", [Variable("A"), b])],
            [ComparisonAtom(b, ComparisonOp.LT, Constant(nan))],
        )
        plan = plan_query(q, skewed_db)
        assert plan.pushed_ranges == ()
        assert not plan.empty
        assert list(enumerate_bindings(q, skewed_db)) == []
        assert list(reference_bindings(q, skewed_db)) == []

    def test_variable_variable_range_stays_residual(self, skewed_db):
        q = parse_query("Q(A, B) :- Big(A, B), A < B")
        plan = plan_query(q, skewed_db)
        assert plan.pushed_ranges == ()
        assert plan.steps[0].range_position is None

    def test_range_on_bound_join_variable_keeps_index_probe(self, skewed_db):
        # B is bound by Small first; Big probes the hash index on B and
        # the range is a residual filter scheduled at Small's step.
        q = parse_query("Q(A, C) :- Big(A, B), Small(B, C), B < 2")
        plan = plan_query(q, skewed_db)
        big = next(s for s in plan.steps if s.atom.relation == "Big")
        assert big.lookup_positions == (1,)
        assert big.range_position is None
        assert _multiset(enumerate_bindings(q, skewed_db)) == _multiset(
            reference_bindings(q, skewed_db)
        )

    def test_mixed_type_column_degrades_to_warning_and_recheck(self):
        schema = Schema([RelationSchema("M", ["a", "b"])])
        db = Database(schema)
        db.insert_all("M", [(1, 5), (2, "x"), (3, 9)])
        q = parse_query("Q(A) :- M(A, B), B < 8")
        plan = plan_query(q, db)
        assert plan.steps[0].range_position == 1  # planner still pushes
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            planned = _multiset(enumerate_bindings(q, db))
        assert planned == _multiset(reference_bindings(q, db))
        assert sum(planned.values()) == 1
        assert any(
            issubclass(w.category, MixedTypeComparisonWarning)
            for w in caught
        )

    def test_range_pushdown_survives_plan_cache_rebinding(self, skewed_db):
        planner = QueryPlanner(skewed_db)
        planner.plan(parse_query("Q(A) :- Big(A, B), B < 20"))
        rebound = planner.plan(parse_query("Q(X) :- Big(X, Y), Y < 20"))
        assert planner.hits == 1
        assert rebound.pushed_ranges == (ComparisonAtom(
            Variable("Y"), ComparisonOp.LT, Constant(20)
        ),)
        bindings = list(execute_plan(rebound, skewed_db))
        assert bindings and all(b[Variable("Y")] < 20 for b in bindings)

    def test_string_ranges_are_pushable(self, skewed_db):
        schema = Schema([RelationSchema("Names", ["n"])])
        db = Database(schema)
        db.insert_all("Names", [("alice",), ("bob",), ("carol",), ("dave",)])
        q = parse_query('Q(N) :- Names(N), N < "c"')
        plan = plan_query(q, db)
        assert plan.steps[0].range_position == 0
        assert sorted(
            b[Variable("N")] for b in enumerate_bindings(q, db)
        ) == ["alice", "bob"]


class TestCompositePushdown:
    """Equality + range on one step become a single composite probe."""

    @pytest.fixture
    def wide_db(self):
        """Wide(a, ty, k): ty splits rows in half, k is unique."""
        schema = Schema([RelationSchema("Wide", ["a", "ty", "k"])])
        db = Database(schema)
        db.insert_all(
            "Wide",
            [(i, "hot" if i % 2 == 0 else "cold", i) for i in range(100)],
        )
        return db

    def test_equality_and_range_share_one_probe(self, wide_db):
        q = parse_query('Q(A) :- Wide(A, Ty, K), Ty = "hot", K < 10')
        plan = plan_query(q, wide_db)
        step = plan.steps[0]
        assert step.lookup_positions == (1,)
        assert step.lookup_terms == (Constant("hot"),)
        assert step.range_position == 2
        assert step.range_interval.hi == 10 and step.range_interval.hi_open
        assert step.path_kind == "composite"
        assert 'composite index on [1]="hot" + [2] in' in step.access_path

    def test_composite_results_match_reference(self, wide_db):
        q = parse_query('Q(A, K) :- Wide(A, Ty, K), Ty = "hot", K < 10')
        planned = _multiset(enumerate_bindings(q, wide_db))
        assert planned == _multiset(reference_bindings(q, wide_db))
        assert sum(planned.values()) == 5  # even i < 10

    def test_path_kind_covers_all_four_shapes(self, wide_db):
        shapes = {
            "Q(A) :- Wide(A, Ty, K)": "scan",
            'Q(A) :- Wide(A, Ty, K), Ty = "hot"': "hash",
            "Q(A) :- Wide(A, Ty, K), K < 10": "ordered",
            'Q(A) :- Wide(A, Ty, K), Ty = "hot", K < 10': "composite",
        }
        for text, kind in shapes.items():
            plan = plan_query(parse_query(text), wide_db)
            assert plan.steps[0].path_kind == kind, text

    def test_bound_join_variable_gets_composite_probe(self, skewed_db):
        # Small (2 rows) binds B first; Big's step hash-probes [1]=B and
        # the A < 5 interval upgrades it to a composite probe.
        q = parse_query("Q(A, C) :- Big(A, B), Small(B, C), A < 5")
        plan = plan_query(q, skewed_db)
        big = next(s for s in plan.steps if s.atom.relation == "Big")
        assert big.lookup_positions == (1,)
        assert big.range_position == 0
        assert big.path_kind == "composite"
        assert _multiset(enumerate_bindings(q, skewed_db)) == _multiset(
            reference_bindings(q, skewed_db)
        )

    def test_most_selective_interval_position_chosen(self):
        schema = Schema([RelationSchema("R", ["ty", "x", "y"])])
        db = Database(schema)
        db.insert_all(
            "R", [("t", i, i % 10) for i in range(100)]
        )
        # x < 5 keeps ~5 rows, y < 8 keeps ~80: x wins the bisect slot.
        q = parse_query('Q(X, Y) :- R(Ty, X, Y), Ty = "t", X < 5, Y < 8')
        plan = plan_query(q, db)
        step = plan.steps[0]
        assert step.range_position == 1
        assert _multiset(enumerate_bindings(q, db)) == _multiset(
            reference_bindings(q, db)
        )

    def test_equality_constant_position_never_hosts_the_bisect(self, wide_db):
        # K's class carries a constant: the hash probe on K is strictly
        # stronger than any interval, so no composite path appears.
        q = parse_query('Q(A) :- Wide(A, Ty, K), K = 4, K < 10')
        plan = plan_query(q, wide_db)
        step = plan.steps[0]
        assert step.lookup_positions == (2,)
        assert step.range_position is None
        assert step.path_kind == "hash"

    def test_interval_propagates_through_equality_closure(self):
        # J = K, K < 10: K's interval tightens the whole {J, K} class,
        # so Wide's step hosts the bisect on J's position even though
        # only K is range-constrained by name.
        schema = Schema([
            RelationSchema("Wide", ["a", "ty", "j"]),
            RelationSchema("Keys", ["k"]),
        ])
        db = Database(schema)
        db.insert_all(
            "Wide",
            [(i, "hot" if i % 2 == 0 else "cold", i) for i in range(100)],
        )
        db.insert_all("Keys", [(i,) for i in range(100)])
        q = parse_query(
            'Q(A) :- Wide(A, Ty, J), Keys(K), Ty = "hot", J = K, K < 10'
        )
        plan = plan_query(q, db)
        wide = next(s for s in plan.steps if s.atom.relation == "Wide")
        assert wide.path_kind == "composite"
        assert wide.lookup_positions == (1,)
        assert wide.range_position == 2
        assert wide.range_interval.hi == 10 and wide.range_interval.hi_open
        assert _multiset(enumerate_bindings(q, db)) == _multiset(
            reference_bindings(q, db)
        )

    def test_mixed_type_bucket_degrades_to_hash_and_recheck(self):
        schema = Schema([RelationSchema("M", ["ty", "k"])])
        db = Database(schema)
        db.insert_all(
            "M", [("hot", 5), ("hot", "x"), ("hot", 9), ("cold", 1)]
        )
        q = parse_query('Q(K) :- M(Ty, K), Ty = "hot", K < 8')
        plan = plan_query(q, db)
        assert plan.steps[0].path_kind == "composite"  # planner still pushes
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            planned = _multiset(enumerate_bindings(q, db))
        assert planned == _multiset(reference_bindings(q, db))
        assert sum(planned.values()) == 1
        assert any(
            issubclass(w.category, MixedTypeComparisonWarning)
            for w in caught
        )

    def test_nan_rows_excluded_from_composite_buckets(self):
        nan = float("nan")
        schema = Schema([RelationSchema("M", ["ty", "k"])])
        db = Database(schema)
        db.insert_all(
            "M", [("hot", 1.0), ("hot", nan), ("hot", 3.0), ("cold", 2.0)]
        )
        q = parse_query('Q(K) :- M(Ty, K), Ty = "hot", K < 5')
        planned = _multiset(enumerate_bindings(q, db))
        assert planned == _multiset(reference_bindings(q, db))
        assert sum(planned.values()) == 2  # NaN row rejected both ways

    def test_incremental_maintenance_across_executions(self, wide_db):
        q = parse_query('Q(A) :- Wide(A, Ty, K), Ty = "hot", K >= 200')
        planner = QueryPlanner(wide_db)
        assert list(enumerate_bindings(q, wide_db, planner=planner)) == []
        wide_db.insert("Wide", 200, "hot", 200)  # maintained incrementally
        bindings = list(enumerate_bindings(q, wide_db, planner=planner))
        assert [b[Variable("A")] for b in bindings] == [200]
        wide_db.delete("Wide", 200, "hot", 200)
        assert list(enumerate_bindings(q, wide_db, planner=planner)) == []

    def test_composite_survives_plan_cache_rebinding(self, wide_db):
        planner = QueryPlanner(wide_db)
        planner.plan(parse_query('Q(A) :- Wide(A, Ty, K), Ty = "hot", K < 10'))
        rebound = planner.plan(
            parse_query('Q(X) :- Wide(X, T, J), T = "hot", J < 10')
        )
        assert planner.hits == 1
        step = rebound.steps[0]
        assert step.path_kind == "composite"
        assert step.lookup_terms == (Constant("hot"),)
        assert set(step.pushed) == {
            ComparisonAtom(Variable("T"), ComparisonOp.EQ, Constant("hot")),
            ComparisonAtom(Variable("J"), ComparisonOp.LT, Constant(10)),
        }
        bindings = list(execute_plan(rebound, wide_db))
        assert sorted(b[Variable("X")] for b in bindings) == [0, 2, 4, 6, 8]

    def test_composite_on_virtual_relation(self, skewed_db):
        rows = [(i, "hot" if i % 2 == 0 else "cold", i) for i in range(50)]
        virtual = IndexedVirtualRelations({"V": rows})
        q = parse_query('Q(A) :- V(A, Ty, K), Ty = "hot", K < 10')
        plan = plan_query(q, skewed_db, virtual)
        step = plan.steps[0]
        assert step.virtual and step.path_kind == "composite"
        bindings = list(execute_plan(plan, skewed_db, virtual))
        assert sorted(b[Variable("A")] for b in bindings) == [0, 2, 4, 6, 8]

    def test_step_pushed_attribution(self, wide_db):
        q = parse_query('Q(A) :- Wide(A, Ty, K), Ty = "hot", K < 10, A < K')
        plan = plan_query(q, wide_db)
        step = plan.steps[0]
        # The access path serves the equality and the range; the var-var
        # comparison stays residual only.
        assert set(step.pushed) == {
            ComparisonAtom(Variable("Ty"), ComparisonOp.EQ, Constant("hot")),
            ComparisonAtom(Variable("K"), ComparisonOp.LT, Constant(10)),
        }
        assert ComparisonAtom(
            Variable("A"), ComparisonOp.LT, Variable("K")
        ) in step.comparisons


class TestExplain:
    def test_explain_mentions_every_atom(self, skewed_db):
        q = parse_query("Q(A, C) :- Big(A, B), Small(B, C)")
        text = plan_query(q, skewed_db).explain()
        assert "Big" in text and "Small" in text
        assert "estimated cost" in text
        assert "index on" in text
        assert "scan" in text

    def test_explain_empty_plan(self, skewed_db):
        q = parse_query("Q(A) :- Big(A, B), 1 = 2")
        plan = plan_query(q, skewed_db)
        assert plan.empty
        assert "empty result" in plan.explain()

    def test_explain_no_atoms(self, skewed_db):
        q = parse_query('Q("ok") :- 1 < 2')
        text = plan_query(q, skewed_db).explain()
        assert "single empty binding" in text

    def test_explain_renders_pushed_vs_residual(self, skewed_db):
        q = parse_query("Q(A, C) :- Big(A, B), Small(B, C), B = 1, A < C")
        text = plan_query(q, skewed_db).explain()
        assert "pushed predicates:" in text
        assert "]: B = 1" in text
        assert "then check residual A < C" in text
        assert "B = 1" not in text.split("then check residual", 1)[1]

    def test_explain_without_pushed_comparisons_has_no_pushed_line(
        self, skewed_db
    ):
        q = parse_query("Q(A, C) :- Big(A, B), Small(B, C)")
        text = plan_query(q, skewed_db).explain()
        assert "pushed predicates" not in text

    def test_explain_renders_ordered_access_path(self, skewed_db):
        q = parse_query("Q(A) :- Big(A, B), B >= 10, B < 20, A < B")
        text = plan_query(q, skewed_db).explain()
        assert "ordered index on [1] in [10, 20)" in text
        assert "then check residual" in text
        pushed_line = next(
            line for line in text.splitlines()
            if line.strip().startswith("step 1")
        )
        assert "B >= 10, B < 20" in pushed_line
        # The var-var range is never pushed.
        assert "A < B" not in pushed_line

    def test_explain_lists_one_access_path_per_step(self, skewed_db):
        """The satellite fix: an equality and a range served by one
        composite probe render as ONE access path, never as two separate
        pushed lines implying two probes."""
        q = parse_query("Q(A) :- Big(A, B), A = 7, B >= 10, B < 20")
        text = plan_query(q, skewed_db).explain()
        pushed_lines = [
            line for line in text.splitlines()
            if line.strip().startswith("step ")
        ]
        assert len(pushed_lines) == 1
        line = pushed_lines[0]
        assert "composite index on [0]=7 + [1] in [10, 20)" in line
        assert "A = 7" in line and "B >= 10" in line and "B < 20" in line
        # The legacy two-section rendering is gone.
        assert "pushed into access paths" not in text
        assert "pushed into ordered access paths" not in text

    def test_explain_ground_false_short_circuit_reason(self, skewed_db):
        q = parse_query("Q(A) :- Big(A, B), 1 = 2")
        text = plan_query(q, skewed_db).explain()
        assert "empty result (false ground comparison)" in text

    def test_explain_contradiction_short_circuit_reason(self, skewed_db):
        q = parse_query("Q(A) :- Big(A, B), B = 1, B = 2")
        text = plan_query(q, skewed_db).explain()
        assert "empty result (contradictory equality comparisons)" in text
        # The short circuit never renders join steps.
        assert "rows/probe" not in text


class TestPlanErrors:
    def test_parameterized_query_rejected(self, skewed_db):
        q = parse_query("lambda A. V(A, B) :- Big(A, B)")
        with pytest.raises(QueryError):
            plan_query(q, skewed_db)

    def test_base_arity_mismatch_rejected_at_plan_time(self, skewed_db):
        q = parse_query("Q(A) :- Big(A)")
        with pytest.raises(QueryError):
            plan_query(q, skewed_db)

    def test_virtual_arity_mismatch_rejected(self, skewed_db):
        q = parse_query("Q(X) :- V(X, Y)")
        with pytest.raises(QueryError):
            plan_query(q, skewed_db, {"V": [(1,)]})

    def test_comparison_variable_without_relational_atom_rejected(
        self, skewed_db
    ):
        """A comparison over a variable no relational atom binds (e.g.
        ``q(X) :- Big(X, B), Y < 3``) must fail loudly at plan time — not
        be silently dropped, and not surface later as a KeyError inside
        the executor."""
        q = ConjunctiveQuery(
            "Q",
            [Variable("A")],
            [RelationalAtom("Big", [Variable("A"), Variable("B")])],
            [ComparisonAtom(Variable("Y"), ComparisonOp.LT, Constant(3))],
        )
        with pytest.raises(QueryError, match="Y"):
            plan_query(q, skewed_db)
        with pytest.raises(QueryError, match="Y"):
            QueryPlanner(skewed_db).plan(q)
        with pytest.raises(QueryError, match="Y"):
            list(enumerate_bindings(q, skewed_db))
        with pytest.raises(QueryError, match="Y"):
            list(reference_bindings(q, skewed_db))

    def test_unanchored_equality_variable_rejected_not_dropped(
        self, skewed_db
    ):
        # Same guarantee for pushable ops: the closure must never absorb
        # a comparison whose variable the safety check would reject.
        q = ConjunctiveQuery(
            "Q",
            [Variable("A")],
            [RelationalAtom("Big", [Variable("A"), Variable("B")])],
            [ComparisonAtom(Variable("Y"), ComparisonOp.EQ, Constant(3))],
        )
        with pytest.raises(QueryError, match="Y"):
            plan_query(q, skewed_db)


class TestPlanner:
    def test_alpha_equivalent_queries_share_plan(self, skewed_db):
        planner = QueryPlanner(skewed_db)
        planner.plan(parse_query("Q(A, C) :- Big(A, B), Small(B, C)"))
        planner.plan(parse_query("Q(X, Z) :- Big(X, Y), Small(Y, Z)"))
        assert planner.hits == 1 and planner.misses == 1
        assert planner.size == 1

    def test_rebound_plan_uses_caller_variables(self, skewed_db):
        planner = QueryPlanner(skewed_db)
        planner.plan(parse_query("Q(A, C) :- Big(A, B), Small(B, C)"))
        rebound = planner.plan(
            parse_query("Q(X, Z) :- Big(X, Y), Small(Y, Z)")
        )
        join = rebound.steps[1]
        assert join.lookup_terms == (Variable("Y"),)
        bindings = list(execute_plan(rebound, skewed_db))
        assert bindings and all(Variable("X") in b for b in bindings)

    def test_data_change_invalidates_plan(self, skewed_db):
        planner = QueryPlanner(skewed_db)
        q = parse_query("Q(A, C) :- Big(A, B), Small(B, C)")
        planner.plan(q)
        skewed_db.insert("Small", 3, 300)
        planner.plan(q)
        assert planner.misses == 2 and planner.hits == 0

    def test_virtual_size_change_invalidates_plan(self, skewed_db):
        planner = QueryPlanner(skewed_db)
        q = parse_query("Q(X, B) :- V(X), Big(X, B)")
        planner.plan(q, {"V": [(1,)]})
        planner.plan(q, {"V": [(1,), (2,)]})
        assert planner.misses == 2

    def test_same_size_virtual_content_change_invalidates_plan(
        self, skewed_db
    ):
        """Regression: fingerprints used to track virtual-relation *size*
        only, so replacing a row (same size, new content) kept serving a
        plan costed against dead statistics."""
        planner = QueryPlanner(skewed_db)
        q = parse_query("Q(X, B) :- V(X), Big(X, B)")
        planner.plan(q, {"V": [(1,)]})
        planner.plan(q, {"V": [(2,)]})  # same size, different row
        assert planner.misses == 2 and planner.hits == 0

    def test_identical_virtual_content_still_hits(self, skewed_db):
        planner = QueryPlanner(skewed_db)
        q = parse_query("Q(X, B) :- V(X), Big(X, B)")
        planner.plan(q, {"V": [(1,)]})
        planner.plan(q, {"V": [(1,)]})
        assert planner.hits == 1 and planner.misses == 1

    def test_indexed_wrapper_caches_content_token(self, skewed_db):
        from repro.cq.executor import IndexedVirtualRelations

        virtual = IndexedVirtualRelations({"V": [(1,), (2,)]})
        token = virtual.content_token("V")
        assert virtual.content_token("V") is token
        other = IndexedVirtualRelations({"V": [(1,), (2,)]})
        assert other.content_token("V") == token

    def test_clear(self, skewed_db):
        planner = QueryPlanner(skewed_db)
        planner.plan(parse_query("Q(A) :- Big(A, B)"))
        planner.clear()
        assert planner.size == 0 and planner.misses == 0

    def test_parameterized_query_rejected_even_on_warm_cache(self, skewed_db):
        """λ-parameters are invisible to the canonical key, so the planner
        must reject parameterized queries before cache lookup — a warm
        cache must not hand back the instantiated sibling's plan."""
        planner = QueryPlanner(skewed_db)
        planner.plan(parse_query("Q(A) :- Big(A, B)"))
        with pytest.raises(QueryError):
            planner.plan(parse_query("lambda B. Q(A) :- Big(A, B)"))


class TestPlannerBound:
    """The LRU bound on the plan cache: distinct-structure floods evict
    the least recently used plans instead of growing without limit."""

    STRUCTURES = [
        "Q(A) :- Big(A, B)",
        "Q(C) :- Small(B, C)",
        "Q(A, C) :- Big(A, B), Small(B, C)",
    ]

    def test_eviction_beyond_max_entries(self, skewed_db):
        planner = QueryPlanner(skewed_db, max_entries=2)
        for text in self.STRUCTURES:
            planner.plan(parse_query(text))
        assert planner.size == 2
        assert planner.evictions >= 1
        # The oldest structure was evicted: replanning misses again.
        misses = planner.misses
        planner.plan(parse_query(self.STRUCTURES[0]))
        assert planner.misses == misses + 1

    def test_hit_refreshes_lru_order(self, skewed_db):
        planner = QueryPlanner(skewed_db, max_entries=2)
        planner.plan(parse_query(self.STRUCTURES[0]))
        planner.plan(parse_query(self.STRUCTURES[1]))
        planner.plan(parse_query(self.STRUCTURES[0]))  # refresh entry 0
        planner.plan(parse_query(self.STRUCTURES[2]))  # evicts entry 1
        misses = planner.misses
        planner.plan(parse_query(self.STRUCTURES[0]))
        assert planner.misses == misses

    def test_bounded_planner_results_unchanged(self, skewed_db):
        bounded = QueryPlanner(skewed_db, max_entries=1)
        unbounded = QueryPlanner(skewed_db)
        for text in self.STRUCTURES * 2:
            query = parse_query(text)
            left = list(execute_plan(bounded.plan(query), skewed_db))
            right = list(execute_plan(unbounded.plan(query), skewed_db))
            assert left == right

    def test_clear_resets_counters_coherently(self, skewed_db):
        planner = QueryPlanner(skewed_db, max_entries=1)
        for text in self.STRUCTURES:
            planner.plan(parse_query(text))
        assert planner.evictions >= 2
        planner.clear()
        assert planner.size == 0
        assert (planner.hits, planner.misses, planner.evictions) == (0, 0, 0)

    def test_rejects_nonpositive_bound(self, skewed_db):
        with pytest.raises(ValueError):
            QueryPlanner(skewed_db, max_entries=0)


class TestCanonicalize:
    def test_canonical_queries_equal_for_alpha_variants(self):
        q1 = parse_query('Q(N) :- Family(F, N, Ty), Ty = "gpcr"')
        q2 = parse_query('Q(M) :- Family(G, M, T2), T2 = "gpcr"')
        c1, __ = canonicalize(q1)
        c2, __ = canonicalize(q2)
        assert c1 == c2
        assert canonical_key(q1) == canonical_key(q2)

    def test_renaming_round_trips(self):
        q = parse_query("Q(A, C) :- R(A, B), S(B, C), A < C")
        canonical, renaming = canonicalize(q)
        assert set(renaming) == {Variable("A"), Variable("B"), Variable("C")}
        inverse = {canon: orig for orig, canon in renaming.items()}
        assert canonical.substitute(inverse).atoms == q.atoms


class TestIndexedVirtualRelations:
    def test_lookup_uses_index(self):
        virtual = IndexedVirtualRelations({"V": [(1, 10), (2, 20), (1, 30)]})
        assert sorted(virtual.lookup("V", (0,), (1,))) == [(1, 10), (1, 30)]
        assert virtual.lookup("V", (0,), (9,)) == ()

    def test_wrap_is_idempotent(self):
        virtual = IndexedVirtualRelations({"V": [(1,)]})
        assert IndexedVirtualRelations.wrap(virtual) is virtual
        assert IndexedVirtualRelations.wrap(None) is None

    def test_mapping_protocol(self):
        virtual = IndexedVirtualRelations({"V": [(1,)], "W": []})
        assert "V" in virtual and len(virtual) == 2
        assert list(virtual["V"]) == [(1,)]

    def test_arity_validated_once_then_cached(self):
        virtual = IndexedVirtualRelations({"V": [(1, 2)]})
        virtual.validate_arity("V", 2)
        with pytest.raises(QueryError):
            virtual.validate_arity("V", 3)

    def test_statistics(self):
        virtual = IndexedVirtualRelations({"V": [(1, 10), (2, 10)]})
        stats = virtual.statistics_for("V", 2)
        assert stats.cardinality == 2
        assert stats.distinct(0) == 2
        assert stats.distinct(1) == 1


class TestMixedTypeWarning:
    def test_warns_once_per_query_execution(self, skewed_db):
        q = parse_query('Q(A) :- Big(A, B), B < "zzz"')
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = list(enumerate_bindings(q, skewed_db))
        assert result == []
        mixed = [w for w in caught
                 if issubclass(w.category, MixedTypeComparisonWarning)]
        assert len(mixed) == 1
        message = mixed[0].message
        assert message.query_name == "Q"
        assert message.left_type == "int" and message.right_type == "str"
