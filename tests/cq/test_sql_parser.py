"""Tests for the SQL front-end."""

import pytest

from repro.cq.evaluation import evaluate_query
from repro.cq.sql_parser import parse_sql
from repro.cq.terms import Constant
from repro.errors import ParseError
from repro.gtopdb.sample import paper_database
from repro.relational.expressions import ComparisonOp


@pytest.fixture(scope="module")
def db():
    return paper_database()


class TestBasicSelect:
    def test_single_table(self, db):
        q = parse_sql("SELECT FName FROM Family", db)
        assert len(q.atoms) == 1
        assert q.atoms[0].relation == "Family"
        assert len(q.head) == 1

    def test_aliased_columns(self, db):
        q = parse_sql("SELECT f.FName FROM Family f", db)
        assert q.head[0].name == "f_FName"

    def test_as_alias(self, db):
        q = parse_sql("SELECT f.FName FROM Family AS f", db)
        assert q.head[0].name == "f_FName"

    def test_evaluation_matches_expected(self, db):
        q = parse_sql(
            "SELECT f.FName FROM Family f WHERE f.Type = 'vgic'", db
        )
        assert evaluate_query(q, db) == [("CatSper",)]


class TestJoins:
    def test_comma_join_with_where(self, db):
        q = parse_sql(
            "SELECT f.FName, i.Text FROM Family f, FamilyIntro i "
            "WHERE f.FID = i.FID", db
        )
        # Equi-join columns unified into a shared variable.
        family_atom = q.atoms[0]
        intro_atom = q.atoms[1]
        assert family_atom.terms[0] == intro_atom.terms[0]

    def test_join_on_syntax(self, db):
        q = parse_sql(
            "SELECT f.FName FROM Family f JOIN FamilyIntro i "
            "ON f.FID = i.FID", db
        )
        assert q.atoms[0].terms[0] == q.atoms[1].terms[0]

    def test_inner_join(self, db):
        q = parse_sql(
            "SELECT f.FName FROM Family f INNER JOIN FamilyIntro i "
            "ON f.FID = i.FID", db
        )
        assert len(q.atoms) == 2

    def test_three_way_join_evaluates(self, db):
        q = parse_sql(
            "SELECT p.PName FROM Family f, FC c, Person p "
            "WHERE f.FID = c.FID AND c.PID = p.PID AND f.FName = 'Calcitonin'",
            db,
        )
        names = {row[0] for row in evaluate_query(q, db)}
        assert names == {"Hay", "Poyner"}


class TestPredicates:
    def test_literal_predicate_kept_as_comparison(self, db):
        q = parse_sql(
            "SELECT f.FName FROM Family f WHERE f.Type = 'gpcr'", db
        )
        assert len(q.comparisons) == 1
        assert q.comparisons[0].right == Constant("gpcr")

    def test_numeric_literal(self, db):
        q = parse_sql(
            "SELECT f.FName FROM Family f WHERE f.FID != 3", db
        )
        assert q.comparisons[0].right == Constant(3)

    @pytest.mark.parametrize("op_text,op", [
        ("=", ComparisonOp.EQ), ("<>", ComparisonOp.NE),
        ("<", ComparisonOp.LT), (">=", ComparisonOp.GE),
    ])
    def test_operators(self, db, op_text, op):
        q = parse_sql(
            f"SELECT f.FName FROM Family f WHERE f.FID {op_text} '5'", db
        )
        assert q.comparisons[0].op is op

    def test_non_equality_column_comparison_kept(self, db):
        q = parse_sql(
            "SELECT f.FName FROM Family f, FamilyIntro i "
            "WHERE f.FID < i.FID", db
        )
        assert len(q.comparisons) == 1


class TestColumnResolution:
    def test_unqualified_unique_column(self, db):
        q = parse_sql("SELECT FName FROM Family", db)
        assert q.head[0].name == "Family_FName"

    def test_ambiguous_column_rejected(self, db):
        with pytest.raises(ParseError, match="ambiguous"):
            parse_sql("SELECT FID FROM Family, FamilyIntro", db)

    def test_unknown_column_rejected(self, db):
        with pytest.raises(ParseError):
            parse_sql("SELECT nope FROM Family", db)

    def test_unknown_alias_rejected(self, db):
        with pytest.raises(ParseError):
            parse_sql("SELECT z.FName FROM Family f", db)

    def test_unknown_table_rejected(self, db):
        with pytest.raises(ParseError):
            parse_sql("SELECT x FROM Nope", db)

    def test_duplicate_alias_rejected(self, db):
        with pytest.raises(ParseError, match="duplicate"):
            parse_sql("SELECT f.FID FROM Family f, FamilyIntro f", db)


class TestUnsupported:
    @pytest.mark.parametrize("sql", [
        "SELECT f.FName FROM Family f WHERE f.Type = 'a' OR f.Type = 'b'",
        "SELECT FName FROM Family GROUP BY FName",
        "SELECT FName FROM Family ORDER BY FName",
        "SELECT FName FROM Family LIMIT 5",
        "SELECT * FROM Family",
    ])
    def test_rejected_constructs(self, db, sql):
        with pytest.raises(ParseError):
            parse_sql(sql, db)

    def test_distinct_is_accepted(self, db):
        # DISTINCT is a no-op under set semantics.
        q = parse_sql("SELECT DISTINCT FName FROM Family", db)
        assert len(q.head) == 1


class TestSemanticsAgainstDatalog:
    def test_sql_equals_datalog(self, db):
        from repro.cq.parser import parse_query
        sql_q = parse_sql(
            "SELECT f.FName, i.Text FROM Family f, FamilyIntro i "
            "WHERE f.FID = i.FID AND f.Type = 'gpcr'", db
        )
        datalog_q = parse_query(
            'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"'
        )
        assert sorted(evaluate_query(sql_q, db)) == sorted(
            evaluate_query(datalog_q, db)
        )
