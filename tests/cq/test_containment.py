"""Tests for containment, equivalence, and the comparison closure."""

import pytest

from repro.cq.atoms import ComparisonAtom
from repro.cq.containment import (
    ComparisonClosure,
    are_equivalent,
    find_homomorphism,
    is_contained_in,
    normalize_query,
)
from repro.cq.parser import parse_query
from repro.cq.terms import Constant, Variable
from repro.errors import ParameterError
from repro.relational.expressions import ComparisonOp


def comp(left, op, right):
    return ComparisonAtom(left, ComparisonOp.parse(op), right)


X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestComparisonClosure:
    def test_equality_via_union(self):
        closure = ComparisonClosure((comp(X, "=", Y),))
        assert closure.entails(comp(Y, "=", X))

    def test_equality_with_constant(self):
        closure = ComparisonClosure((comp(X, "=", Constant(3)),))
        assert closure.entails(comp(X, "=", Constant(3)))
        assert closure.entails(comp(X, "!=", Constant(4)))
        assert closure.entails(comp(X, "<", Constant(5)))

    def test_transitivity_of_lt(self):
        closure = ComparisonClosure((comp(X, "<", Y), comp(Y, "<", Z)))
        assert closure.entails(comp(X, "<", Z))
        assert closure.entails(comp(X, "<=", Z))
        assert closure.entails(comp(X, "!=", Z))

    def test_le_lt_mix(self):
        closure = ComparisonClosure((comp(X, "<=", Y), comp(Y, "<", Z)))
        assert closure.entails(comp(X, "<", Z))

    def test_le_both_ways_gives_equality(self):
        closure = ComparisonClosure((comp(X, "<=", Y), comp(Y, "<=", X)))
        assert closure.entails(comp(X, "=", Y))

    def test_transitivity_through_constants(self):
        closure = ComparisonClosure((
            comp(X, "<=", Constant(5)), comp(Constant(5), "<", Y),
        ))
        assert closure.entails(comp(X, "<", Y))

    def test_unsat_lt_self(self):
        closure = ComparisonClosure((comp(X, "<", Y), comp(Y, "<", X)))
        assert not closure.satisfiable

    def test_unsat_conflicting_constants(self):
        closure = ComparisonClosure((
            comp(X, "=", Constant(1)), comp(X, "=", Constant(2)),
        ))
        assert not closure.satisfiable

    def test_unsat_ne_self(self):
        closure = ComparisonClosure((comp(X, "=", Y), comp(X, "!=", Y)))
        assert not closure.satisfiable

    def test_unsat_entails_everything(self):
        closure = ComparisonClosure((comp(X, "<", X),))
        assert closure.entails(comp(Y, "=", Z))

    def test_ge_gt_orientation(self):
        closure = ComparisonClosure((comp(X, ">", Y),))
        assert closure.entails(comp(Y, "<", X))
        assert closure.entails(comp(X, ">=", Y))

    def test_no_spurious_entailment(self):
        closure = ComparisonClosure((comp(X, "<=", Y),))
        assert not closure.entails(comp(X, "<", Y))
        assert not closure.entails(comp(X, "=", Y))

    def test_ground_entailment(self):
        closure = ComparisonClosure(())
        assert closure.entails(comp(Constant(1), "<", Constant(2)))
        assert not closure.entails(comp(Constant(2), "<", Constant(1)))

    def test_union_find_chain_terminates(self):
        # Regression: path compression once self-looped on the root and
        # hung forever on equality chains ending in a constant.
        closure = ComparisonClosure((
            comp(X, "=", Y), comp(Y, "=", Z), comp(Z, "=", Constant(1)),
        ))
        assert closure.entails(comp(X, "=", Constant(1)))
        assert closure.entails(comp(X, "=", Z))
        # Repeated finds after compression must also terminate.
        for __ in range(3):
            assert closure.equal(X, Constant(1))

    def test_long_equality_chain(self):
        variables = [Variable(f"V{i}") for i in range(20)]
        chain = tuple(
            comp(variables[i], "=", variables[i + 1])
            for i in range(len(variables) - 1)
        )
        closure = ComparisonClosure(chain)
        assert closure.entails(comp(variables[0], "=", variables[-1]))


class TestNormalizeQuery:
    def test_constant_propagation(self):
        q = parse_query('Q(N) :- Family(F, N, Ty), Ty = "gpcr"')
        normalized, satisfiable = normalize_query(q)
        assert satisfiable
        assert normalized.comparisons == ()
        assert Constant("gpcr") in normalized.atoms[0].terms

    def test_head_variables_protected(self):
        q = parse_query('Q(Ty) :- Family(F, N, Ty), Ty = "gpcr"')
        normalized, __ = normalize_query(q)
        # Head var survives; the comparison is kept.
        assert normalized.head == (Variable("Ty"),)
        assert len(normalized.comparisons) == 1

    def test_variable_unification(self):
        q = parse_query("Q(A) :- R(A, B), S(C), B = C")
        normalized, __ = normalize_query(q)
        assert normalized.comparisons == ()
        assert normalized.atoms[0].terms[1] == normalized.atoms[1].terms[0]

    def test_false_ground_comparison_unsat(self):
        q = parse_query("Q(A) :- R(A), 1 = 2")
        __, satisfiable = normalize_query(q)
        assert not satisfiable

    def test_contradictory_comparisons_unsat(self):
        q = parse_query("Q(A) :- R(A, B), B < 3, B > 5")
        __, satisfiable = normalize_query(q)
        assert not satisfiable

    def test_duplicate_atoms_removed(self):
        q = parse_query("Q(A) :- R(A), R(A)")
        normalized, __ = normalize_query(q)
        assert len(normalized.atoms) == 1

    def test_trivial_comparison_removed(self):
        q = parse_query("Q(A) :- R(A, B), B = B")
        normalized, __ = normalize_query(q)
        assert normalized.comparisons == ()


class TestHomomorphism:
    def test_identity(self):
        q = parse_query("Q(A) :- R(A, B)")
        assert find_homomorphism(q, q) is not None

    def test_collapse(self):
        source = parse_query("Q(A) :- R(A, B), R(A, C)")
        target = parse_query("Q(A) :- R(A, B)")
        hom = find_homomorphism(source, target)
        assert hom is not None
        assert hom[Variable("B")] == hom[Variable("C")]

    def test_head_constraint(self):
        source = parse_query("Q(A, B) :- R(A, B)")
        target = parse_query("Q(A, A) :- R(A, A)")
        assert find_homomorphism(source, target) is not None
        assert find_homomorphism(target, source) is None

    def test_comparison_entailment_required(self):
        source = parse_query("Q(A) :- R(A, B), B > 3")
        target = parse_query("Q(A) :- R(A, B), B > 5")
        assert find_homomorphism(source, target) is not None
        assert find_homomorphism(target, source) is None


class TestContainment:
    def test_more_selective_contained(self):
        qa = parse_query('Q(X) :- Family(X, N, Ty), Ty = "gpcr"')
        qb = parse_query("Q(X) :- Family(X, N, Ty)")
        assert is_contained_in(qa, qb)
        assert not is_contained_in(qb, qa)

    def test_extra_join_contained(self):
        qa = parse_query("Q(X) :- R(X, Y), S(Y, Z)")
        qb = parse_query("Q(X) :- R(X, Y)")
        assert is_contained_in(qa, qb)
        assert not is_contained_in(qb, qa)

    def test_unsatisfiable_contained_in_everything(self):
        qa = parse_query("Q(X) :- R(X), 1 = 2")
        qb = parse_query("Q(X) :- S(X)")
        assert is_contained_in(qa, qb)
        assert not is_contained_in(qb, qa)

    def test_arity_mismatch_not_contained(self):
        qa = parse_query("Q(X) :- R(X, Y)")
        qb = parse_query("Q(X, Y) :- R(X, Y)")
        assert not is_contained_in(qa, qb)

    def test_different_constants_incomparable(self):
        qa = parse_query('Q(X) :- R(X, "a")')
        qb = parse_query('Q(X) :- R(X, "b")')
        assert not is_contained_in(qa, qb)
        assert not is_contained_in(qb, qa)

    def test_range_containment(self):
        qa = parse_query("Q(X) :- R(X, Y), Y > 5")
        qb = parse_query("Q(X) :- R(X, Y), Y > 3")
        assert is_contained_in(qa, qb)
        assert not is_contained_in(qb, qa)


class TestEquivalence:
    def test_reordered_atoms(self):
        q1 = parse_query("Q(A) :- R(A, B), S(B)")
        q2 = parse_query("Q(A) :- S(B), R(A, B)")
        assert are_equivalent(q1, q2)

    def test_renamed_variables(self):
        q1 = parse_query("Q(A) :- R(A, B)")
        q2 = parse_query("Q(X) :- R(X, Y)")
        assert are_equivalent(q1, q2)

    def test_redundant_atom(self):
        q1 = parse_query("Q(A) :- R(A, B)")
        q2 = parse_query("Q(A) :- R(A, B), R(A, C)")
        assert are_equivalent(q1, q2)

    def test_inline_constant_vs_comparison(self):
        q1 = parse_query('Q(N) :- Family(F, N, "gpcr")')
        q2 = parse_query('Q(N) :- Family(F, N, Ty), Ty = "gpcr"')
        assert are_equivalent(q1, q2)

    def test_non_equivalent(self):
        q1 = parse_query("Q(A) :- R(A, B), S(B)")
        q2 = parse_query("Q(A) :- R(A, B)")
        assert not are_equivalent(q1, q2)


class TestParameterizedComparison:
    def test_same_parameter_positions_align(self):
        v1 = parse_query("lambda F. V(F, N) :- Family(F, N, Ty)")
        v2 = parse_query("lambda G. W(G, M) :- Family(G, M, T2)")
        assert is_contained_in(v1, v2)
        assert is_contained_in(v2, v1)

    def test_parameter_count_mismatch_raises(self):
        v1 = parse_query("lambda F. V(F, N) :- Family(F, N, Ty)")
        v2 = parse_query("W(G, M) :- Family(G, M, T2)")
        with pytest.raises(ParameterError):
            is_contained_in(v1, v2)

    def test_parameterized_more_selective(self):
        # λF pins the family: instantiated V1 ⊆ unparameterized V3.
        v1 = parse_query("lambda F. V(F, N, Ty) :- Family(F, N, Ty)")
        v3 = parse_query("W(F, N, Ty) :- Family(F, N, Ty)")
        assert is_contained_in(v1.instantiate(["11"]),  v3)
