"""Tests for query minimization (core computation)."""

from repro.cq.containment import are_equivalent
from repro.cq.minimization import is_minimal, minimize
from repro.cq.parser import parse_query


class TestMinimize:
    def test_redundant_atom_removed(self):
        q = parse_query("Q(A) :- R(A, B), R(A, C)")
        core = minimize(q)
        assert len(core.atoms) == 1
        assert are_equivalent(core, q)

    def test_minimal_query_unchanged(self):
        q = parse_query("Q(A) :- R(A, B), S(B, C)")
        assert len(minimize(q).atoms) == 2

    def test_duplicate_atom_removed(self):
        q = parse_query("Q(A) :- R(A), R(A)")
        assert len(minimize(q).atoms) == 1

    def test_chain_collapses_onto_cycleless_core(self):
        # R(A,B), R(B,C) with head A only: cannot collapse (B must map
        # consistently) — classic example where both atoms stay.
        q = parse_query("Q(A) :- R(A, B), R(B, C)")
        assert len(minimize(q).atoms) == 2

    def test_triangle_with_generic_apex_collapses(self):
        # R(A,B) with extra R(X,Y) disconnected: the generic atom folds in.
        q = parse_query("Q(A) :- R(A, B), R(X, Y)")
        core = minimize(q)
        assert len(core.atoms) == 1
        assert are_equivalent(core, q)

    def test_constants_prevent_collapse(self):
        q = parse_query('Q(A) :- R(A, B), R(A, "x")')
        core = minimize(q)
        # R(A,"x") is more specific; R(A,B) folds onto it.
        assert len(core.atoms) == 1
        assert are_equivalent(core, q)

    def test_comparison_variables_kept_anchored(self):
        q = parse_query("Q(A) :- R(A, B), R(A, C), C > 3")
        core = minimize(q)
        # The atom binding C cannot be dropped.
        assert any(
            "C" in [v.name for v in atom.variables()] for atom in core.atoms
        )
        assert are_equivalent(core, q)

    def test_parameters_preserved(self):
        q = parse_query("lambda B. Q(A, B) :- R(A, B), R(A, C)")
        core = minimize(q)
        assert [p.name for p in core.parameters] == ["B"]
        assert len(core.atoms) == 1

    def test_equivalence_always_preserved(self):
        for text in [
            "Q(A) :- R(A, B), R(A, C), S(B)",
            "Q(A, B) :- R(A, B), R(B, A)",
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr", Family(F2, N2, Ty2)',
        ]:
            q = parse_query(text)
            assert are_equivalent(minimize(q), q)

    def test_unsatisfiable_returned_as_is(self):
        q = parse_query("Q(A) :- R(A), 1 = 2")
        core = minimize(q)
        assert len(core.atoms) == 1


class TestIsMinimal:
    def test_minimal_detected(self):
        assert is_minimal(parse_query("Q(A) :- R(A, B), S(B)"))

    def test_non_minimal_detected(self):
        assert not is_minimal(parse_query("Q(A) :- R(A, B), R(A, C)"))

    def test_unsatisfiable_is_minimal(self):
        assert is_minimal(parse_query("Q(A) :- R(A), 1 = 2"))
