"""Tests for conjunctive-query evaluation."""

import pytest

from repro.cq.evaluation import (
    enumerate_bindings,
    evaluate_query,
    evaluate_with_bindings,
)
from repro.cq.parser import parse_query
from repro.cq.terms import Variable
from repro.errors import QueryError
from repro.relational.database import Database
from repro.relational.schema import RelationSchema, Schema


@pytest.fixture
def db():
    schema = Schema([
        RelationSchema("R", ["a", "b"]),
        RelationSchema("S", ["b", "c"]),
    ])
    database = Database(schema)
    database.insert_all("R", [(1, 10), (2, 20), (3, 10)])
    database.insert_all("S", [(10, 100), (20, 200), (10, 101)])
    return database


class TestBasicEvaluation:
    def test_single_atom(self, db):
        q = parse_query("Q(A) :- R(A, B)")
        assert evaluate_query(q, db) == [(1,), (2,), (3,)]

    def test_join(self, db):
        q = parse_query("Q(A, C) :- R(A, B), S(B, C)")
        assert set(evaluate_query(q, db)) == {
            (1, 100), (1, 101), (3, 100), (3, 101), (2, 200),
        }

    def test_set_semantics_dedupes(self, db):
        q = parse_query("Q(B) :- R(A, B)")
        assert evaluate_query(q, db) == [(10,), (20,)]

    def test_constant_in_atom(self, db):
        q = parse_query("Q(B) :- R(1, B)")
        assert evaluate_query(q, db) == [(10,)]

    def test_repeated_variable_in_atom(self, db):
        db.insert("R", 5, 5)
        q = parse_query("Q(A) :- R(A, A)")
        assert evaluate_query(q, db) == [(5,)]

    def test_constant_in_head(self, db):
        q = parse_query('Q(A, "tag") :- R(A, B), A = 1')
        assert evaluate_query(q, db) == [(1, "tag")]

    def test_empty_result(self, db):
        q = parse_query("Q(A) :- R(A, 999)")
        assert evaluate_query(q, db) == []

    def test_cartesian_product(self, db):
        q = parse_query("Q(A, C) :- R(A, B1), S(B2, C)")
        assert len(evaluate_query(q, db)) == 9


class TestComparisons:
    def test_equality_selection(self, db):
        q = parse_query("Q(A) :- R(A, B), B = 10")
        assert evaluate_query(q, db) == [(1,), (3,)]

    def test_inequality(self, db):
        q = parse_query("Q(A) :- R(A, B), B != 10")
        assert evaluate_query(q, db) == [(2,)]

    def test_range(self, db):
        q = parse_query("Q(A) :- R(A, B), A >= 2, A < 3")
        assert evaluate_query(q, db) == [(2,)]

    def test_variable_to_variable(self, db):
        q = parse_query("Q(A, C) :- R(A, B), S(B, C), A < C")
        assert (1, 100) in evaluate_query(q, db)

    def test_false_ground_comparison_empties_result(self, db):
        q = parse_query("Q(A) :- R(A, B), 1 = 2")
        assert evaluate_query(q, db) == []

    def test_true_ground_comparison_is_noop(self, db):
        q = parse_query("Q(A) :- R(A, B), 1 < 2")
        assert len(evaluate_query(q, db)) == 3

    def test_mixed_type_comparison_false(self, db):
        q = parse_query('Q(A) :- R(A, B), B < "zzz"')
        assert evaluate_query(q, db) == []


class TestParameters:
    def test_instantiated_evaluation(self, db):
        v = parse_query("lambda A. V(A, B) :- R(A, B)")
        assert evaluate_query(v, db, params=[1]) == [(1, 10)]

    def test_parameterized_without_values_rejected(self, db):
        v = parse_query("lambda A. V(A, B) :- R(A, B)")
        with pytest.raises(QueryError):
            list(enumerate_bindings(v, db))


class TestBindings:
    def test_bindings_cover_all_variables(self, db):
        q = parse_query("Q(A) :- R(A, B), S(B, C)")
        for binding in enumerate_bindings(q, db):
            assert set(binding) == {Variable("A"), Variable("B"),
                                    Variable("C")}

    def test_bindings_grouped_by_tuple(self, db):
        q = parse_query("Q(A) :- R(A, B), S(B, C)")
        grouped = evaluate_with_bindings(q, db)
        # A=1 joins S twice (10->100, 10->101): two bindings.
        assert len(grouped[(1,)]) == 2
        assert len(grouped[(2,)]) == 1

    def test_binding_count_is_derivation_count(self, db):
        q = parse_query("Q(C) :- R(A, B), S(B, C)")
        grouped = evaluate_with_bindings(q, db)
        # C=100 from A=1 and A=3: two bindings.
        assert len(grouped[(100,)]) == 2


class TestVirtualRelations:
    def test_virtual_relation_visible(self, db):
        q = parse_query("Q(X) :- V(X, Y)")
        virtual = {"V": [(1, "a"), (2, "b")]}
        assert evaluate_query(q, db, virtual=virtual) == [(1,), (2,)]

    def test_virtual_joins_with_base(self, db):
        q = parse_query("Q(X, B) :- V(X), R(X, B)")
        virtual = {"V": [(1,), (99,)]}
        assert evaluate_query(q, db, virtual=virtual) == [(1, 10)]

    def test_virtual_arity_mismatch_rejected(self, db):
        q = parse_query("Q(X) :- V(X, Y)")
        with pytest.raises(QueryError):
            evaluate_query(q, db, virtual={"V": [(1,)]})

    def test_atom_arity_mismatch_rejected(self, db):
        q = parse_query("Q(X) :- R(X)")
        with pytest.raises(QueryError):
            evaluate_query(q, db)


class TestSelfJoin:
    def test_same_relation_twice(self, db):
        q = parse_query("Q(A1, A2) :- R(A1, B), R(A2, B), A1 < A2")
        assert evaluate_query(q, db) == [(1, 3)]
