"""Tests for unions of conjunctive queries (SPJU's U)."""

import pytest

from repro.cq.parser import parse_query
from repro.cq.ucq import UnionQuery, parse_union_query
from repro.errors import QueryError


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            UnionQuery([])

    def test_arity_mismatch_rejected(self):
        with pytest.raises(QueryError):
            UnionQuery([
                parse_query("Q(A) :- R(A, B)"),
                parse_query("Q(A, B) :- R(A, B)"),
            ])

    def test_parameterized_disjunct_rejected(self):
        with pytest.raises(QueryError):
            UnionQuery([
                parse_query("lambda A. Q(A) :- R(A, B)"),
            ])


class TestParsing:
    def test_newline_separated(self):
        union = parse_union_query(
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr"\n'
            'Q(N) :- Family(F, N, Ty), Ty = "vgic"'
        )
        assert len(union) == 2

    def test_semicolon_separated(self):
        union = parse_union_query(
            "Q(A) :- R(A, B) ; Q(A) :- S(A, B)"
        )
        assert len(union) == 2

    def test_mismatched_heads_rejected(self):
        with pytest.raises(QueryError):
            parse_union_query("Q(A) :- R(A, B)\nP(A) :- S(A, B)")

    def test_empty_text_rejected(self):
        with pytest.raises(QueryError):
            parse_union_query("  \n  ")


class TestEvaluation:
    def test_union_semantics(self, db):
        union = parse_union_query(
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr"\n'
            'Q(N) :- Family(F, N, Ty), Ty = "vgic"'
        )
        names = {row[0] for row in union.evaluate(db)}
        assert "Calcitonin" in names and "CatSper" in names

    def test_union_dedupes(self, db):
        union = parse_union_query(
            "Q(N) :- Family(F, N, Ty)\nQ(N) :- Family(F, N, Ty)"
        )
        results = union.evaluate(db)
        assert len(results) == len(set(results))


class TestMinimization:
    def test_subsumed_disjunct_removed(self):
        union = parse_union_query(
            "Q(N) :- Family(F, N, Ty)\n"
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr"'
        )
        minimized = union.minimized()
        assert len(minimized) == 1
        assert minimized.disjuncts[0].comparisons == ()

    def test_equivalent_disjuncts_keep_one(self):
        union = parse_union_query(
            "Q(A) :- R(A, B)\nQ(X) :- R(X, Y)"
        )
        assert len(union.minimized()) == 1

    def test_incomparable_disjuncts_kept(self):
        union = parse_union_query(
            "Q(A) :- R(A, B)\nQ(A) :- S(A, B)"
        )
        assert len(union.minimized()) == 2


class TestUnionCitations:
    UNION = ('Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)\n'
             'Q(N) :- Family(F, N, Ty), Ty = "vgic"')

    def test_outputs_are_union(self, db, comprehensive_engine):
        result = comprehensive_engine.cite_union(self.UNION)
        names = {output[0] for output in result.tuples}
        assert "Calcitonin" in names and "CatSper" in names

    def test_per_tuple_plus_across_disjuncts(self, comprehensive_engine):
        # A tuple produced by both disjuncts gets tokens from both.
        result = comprehensive_engine.cite_union(
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr"\n'
            'Q(N) :- Family(F, N, Ty), FamilyIntro(F, Tx)'
        )
        calcitonin = result.tuples[("Calcitonin",)].polynomial
        from repro.citation.tokens import ViewCitationToken
        views = {
            t.view_name for m in calcitonin.monomials()
            for t in m.tokens() if isinstance(t, ViewCitationToken)
        }
        # Both the type selection (V4) and the intro join (V5) contribute.
        assert "V4" in views and "V5" in views

    def test_union_citation_includes_database(self, focused_engine):
        result = focused_engine.cite_union(self.UNION)
        assert result.database_citation[0] in result.records

    def test_accepts_union_query_object(self, focused_engine):
        union = parse_union_query(self.UNION)
        result = focused_engine.cite_union(union)
        assert result.tuples

    def test_per_rewriting_aligned_with_rewritings(self,
                                                   comprehensive_engine):
        result = comprehensive_engine.cite_union(self.UNION)
        for tc in result.tuples.values():
            assert len(tc.per_rewriting) == len(result.rewritings)


class TestPlannedEvaluation:
    """Planner/memo routing (PR 7): plans per disjunct through the
    shared cache, shared prefixes reserved in the sub-plan memo."""

    UNION = ('Q(N) :- Family(F, N, Ty), FC(F, C)\n'
             'Q(N) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A)')

    def _reference(self, union, db):
        from repro.cq.evaluation import evaluate_query
        seen = {}
        for disjunct in union.disjuncts:
            for row in evaluate_query(disjunct, db):
                seen.setdefault(row)
        return list(seen)

    def test_planner_caches_disjunct_plans(self, db):
        from repro.cq.plan import QueryPlanner

        union = parse_union_query(self.UNION)
        planner = QueryPlanner(db)
        union.plan(db, planner)
        assert planner.misses == len(union)
        union.plan(db, planner)
        assert planner.hits == len(union)

    def test_memo_shares_prefixes_across_disjuncts(self, db):
        from repro.cq.subplan import SubplanMemo

        union = parse_union_query(self.UNION)
        memo = SubplanMemo()
        planned = union.evaluate(db, memo=memo)
        assert planned == self._reference(union, db)
        # The two-step Family⋈FC prefix is evaluated once and seeded
        # into the second disjunct (and later evaluations).
        assert memo.hits >= 1
        assert union.evaluate(db, memo=memo) == planned

    def test_explain_shows_disjuncts_and_shared_prefixes(self, db):
        from repro.cq.subplan import SubplanMemo

        union = parse_union_query(self.UNION)
        rendered = union.explain(db, memo=SubplanMemo())
        assert "disjunct 1/2" in rendered and "disjunct 2/2" in rendered
        assert "shared prefix:" in rendered


class TestEdgeSemantics:
    """UCQ edge cases must be planning-invariant: duplicate-producing,
    contained, and contradiction-short-circuited disjuncts."""

    def _polynomials(self, result):
        return {
            output: tc.polynomial for output, tc in result.tuples.items()
        }

    def test_duplicate_tuples_keep_plus_combination(self, db, registry):
        # Both disjuncts produce every gpcr family name; the +-combined
        # citations must be identical with and without sub-plan sharing.
        from repro.citation.generator import CitationEngine

        union = ('Q(N) :- Family(F, N, Ty), Ty = "gpcr"\n'
                 'Q(N) :- Family(F, N, Ty), Ty = "gpcr", FC(F, C)')
        shared = CitationEngine(db, registry, share_subplans=True)
        unshared = CitationEngine(db, registry, share_subplans=False)
        left = shared.cite_union(union)
        right = unshared.cite_union(union)
        assert list(left.tuples) == list(right.tuples)
        assert self._polynomials(left) == self._polynomials(right)
        assert left.records == right.records

    def test_contained_disjuncts_yield_reference_union(self, db):
        from repro.cq.plan import QueryPlanner
        from repro.cq.subplan import SubplanMemo

        union = parse_union_query(
            "Q(N) :- Family(F, N, Ty)\n"
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr"'
        )
        reference = union.evaluate(db)
        minimized = union.minimized()
        planned = minimized.evaluate(db, QueryPlanner(db), SubplanMemo())
        assert sorted(planned) == sorted(reference)

    def test_empty_interval_disjunct_short_circuits(self, db):
        from repro.cq.plan import QueryPlanner
        from repro.cq.subplan import SubplanMemo

        union = parse_union_query(
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr"\n'
            'Q(N) :- Family(F, N, Ty), N < "A", N > "Z"'
        )
        planner = QueryPlanner(db)
        plans = union.plan(db, planner)
        assert plans[1].empty  # the contradiction is caught at plan time
        planned = union.evaluate(db, planner, SubplanMemo())
        assert planned == union.evaluate(db)
        gpcr = parse_query('Q(N) :- Family(F, N, Ty), Ty = "gpcr"')
        from repro.cq.evaluation import evaluate_query
        assert planned == evaluate_query(gpcr, db)
