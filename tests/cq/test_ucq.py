"""Tests for unions of conjunctive queries (SPJU's U)."""

import pytest

from repro.cq.parser import parse_query
from repro.cq.ucq import UnionQuery, parse_union_query
from repro.errors import QueryError


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            UnionQuery([])

    def test_arity_mismatch_rejected(self):
        with pytest.raises(QueryError):
            UnionQuery([
                parse_query("Q(A) :- R(A, B)"),
                parse_query("Q(A, B) :- R(A, B)"),
            ])

    def test_parameterized_disjunct_rejected(self):
        with pytest.raises(QueryError):
            UnionQuery([
                parse_query("lambda A. Q(A) :- R(A, B)"),
            ])


class TestParsing:
    def test_newline_separated(self):
        union = parse_union_query(
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr"\n'
            'Q(N) :- Family(F, N, Ty), Ty = "vgic"'
        )
        assert len(union) == 2

    def test_semicolon_separated(self):
        union = parse_union_query(
            "Q(A) :- R(A, B) ; Q(A) :- S(A, B)"
        )
        assert len(union) == 2

    def test_mismatched_heads_rejected(self):
        with pytest.raises(QueryError):
            parse_union_query("Q(A) :- R(A, B)\nP(A) :- S(A, B)")

    def test_empty_text_rejected(self):
        with pytest.raises(QueryError):
            parse_union_query("  \n  ")


class TestEvaluation:
    def test_union_semantics(self, db):
        union = parse_union_query(
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr"\n'
            'Q(N) :- Family(F, N, Ty), Ty = "vgic"'
        )
        names = {row[0] for row in union.evaluate(db)}
        assert "Calcitonin" in names and "CatSper" in names

    def test_union_dedupes(self, db):
        union = parse_union_query(
            "Q(N) :- Family(F, N, Ty)\nQ(N) :- Family(F, N, Ty)"
        )
        results = union.evaluate(db)
        assert len(results) == len(set(results))


class TestMinimization:
    def test_subsumed_disjunct_removed(self):
        union = parse_union_query(
            "Q(N) :- Family(F, N, Ty)\n"
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr"'
        )
        minimized = union.minimized()
        assert len(minimized) == 1
        assert minimized.disjuncts[0].comparisons == ()

    def test_equivalent_disjuncts_keep_one(self):
        union = parse_union_query(
            "Q(A) :- R(A, B)\nQ(X) :- R(X, Y)"
        )
        assert len(union.minimized()) == 1

    def test_incomparable_disjuncts_kept(self):
        union = parse_union_query(
            "Q(A) :- R(A, B)\nQ(A) :- S(A, B)"
        )
        assert len(union.minimized()) == 2


class TestUnionCitations:
    UNION = ('Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)\n'
             'Q(N) :- Family(F, N, Ty), Ty = "vgic"')

    def test_outputs_are_union(self, db, comprehensive_engine):
        result = comprehensive_engine.cite_union(self.UNION)
        names = {output[0] for output in result.tuples}
        assert "Calcitonin" in names and "CatSper" in names

    def test_per_tuple_plus_across_disjuncts(self, comprehensive_engine):
        # A tuple produced by both disjuncts gets tokens from both.
        result = comprehensive_engine.cite_union(
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr"\n'
            'Q(N) :- Family(F, N, Ty), FamilyIntro(F, Tx)'
        )
        calcitonin = result.tuples[("Calcitonin",)].polynomial
        from repro.citation.tokens import ViewCitationToken
        views = {
            t.view_name for m in calcitonin.monomials()
            for t in m.tokens() if isinstance(t, ViewCitationToken)
        }
        # Both the type selection (V4) and the intro join (V5) contribute.
        assert "V4" in views and "V5" in views

    def test_union_citation_includes_database(self, focused_engine):
        result = focused_engine.cite_union(self.UNION)
        assert result.database_citation[0] in result.records

    def test_accepts_union_query_object(self, focused_engine):
        union = parse_union_query(self.UNION)
        result = focused_engine.cite_union(union)
        assert result.tuples

    def test_per_rewriting_aligned_with_rewritings(self,
                                                   comprehensive_engine):
        result = comprehensive_engine.cite_union(self.UNION)
        for tc in result.tuples.values():
            assert len(tc.per_rewriting) == len(result.rewritings)
