"""Tests for cross-query sub-plan sharing (repro.cq.subplan)."""

import pytest

from repro.cq.evaluation import reference_bindings
from repro.cq.executor import IndexedVirtualRelations, execute_plan
from repro.cq.parser import parse_query
from repro.cq.plan import QueryPlanner, plan_query, prefix_keys
from repro.cq.subplan import (
    SubplanMemo,
    execute_plan_shared,
    explain_with_memo,
)
from repro.relational.database import Database
from repro.relational.schema import RelationSchema, Schema


def make_db() -> Database:
    schema = Schema([
        RelationSchema("R", ["a", "b"]),
        RelationSchema("S", ["b", "c"]),
        RelationSchema("T", ["c", "d"]),
        RelationSchema("U", ["c", "d"]),
    ])
    db = Database(schema)
    # Sizes chosen so the greedy planner orders every plan R, S, suffix:
    # R is smallest (picked first), S probes cheaply on the bound b, and
    # the large T/U relations come last — so plans over QUERY_T/QUERY_U
    # share the two-step R ⋈ S prefix and differ only in the suffix.
    db.insert_batch({
        "R": [(i, i % 3) for i in range(6)],
        "S": [(b, b * 10 + k) for b in range(3) for k in range(4)],
        "T": [(c, c + 100) for c in range(0, 40)],
        "U": [(c, c + 200) for c in range(0, 80, 2)],
    })
    return db


#: Two queries sharing the R ⋈ S join prefix, with distinct suffixes.
QUERY_T = "Q(A, D) :- R(A, B), S(B, C), T(C, D)"
QUERY_U = "Q(A, D) :- R(A, B), S(B, C), U(C, D)"


def ordered(bindings):
    return [
        tuple(sorted((var.name, value) for var, value in binding.items()))
        for binding in bindings
    ]


def reserve_all(memo, plan):
    keys, __ = prefix_keys(plan)
    for key in keys:
        memo.reserve(key)
    return keys


class TestPrefixKeys:
    def test_alpha_equivalent_plans_share_every_key(self):
        db = make_db()
        plan_a = plan_query(parse_query(QUERY_T), db)
        plan_b = plan_query(
            parse_query("Q(X, W) :- R(X, Y), S(Y, Z), T(Z, W)"), db
        )
        assert prefix_keys(plan_a)[0] == prefix_keys(plan_b)[0]

    def test_overlapping_plans_share_exactly_the_prefix(self):
        db = make_db()
        keys_t = prefix_keys(plan_query(parse_query(QUERY_T), db))[0]
        keys_u = prefix_keys(plan_query(parse_query(QUERY_U), db))[0]
        assert keys_t[:2] == keys_u[:2]
        assert keys_t[2] != keys_u[2]

    def test_constants_are_part_of_the_key(self):
        db = make_db()
        keys_one = prefix_keys(
            plan_query(parse_query("Q(A) :- R(A, B), B = 1"), db)
        )[0]
        keys_two = prefix_keys(
            plan_query(parse_query("Q(A) :- R(A, B), B = 2"), db)
        )[0]
        assert keys_one != keys_two

    def test_adversarial_string_constants_cannot_forge_a_collision(self):
        """Regression: keys are structured tuples, not delimiter-joined
        strings, so a constant crafted to mimic key syntax (one
        comparison whose value reads like two) never collides with the
        genuinely different structure."""
        from repro.cq.atoms import ComparisonAtom, RelationalAtom
        from repro.cq.query import ConjunctiveQuery
        from repro.cq.terms import Constant, Variable
        from repro.relational.expressions import ComparisonOp

        db = Database(Schema([RelationSchema("W", ["a"])]))
        db.insert_all("W", [("x",), ("y",), ("zz",)])
        x = Variable("X")
        two_filters = ConjunctiveQuery(
            "Q", [x], [RelationalAtom("W", [x])],
            [
                ComparisonAtom(x, ComparisonOp.NE, Constant("x")),
                ComparisonAtom(x, ComparisonOp.NE, Constant("y")),
            ],
        )
        forged = ConjunctiveQuery(
            "Q", [x], [RelationalAtom("W", [x])],
            [ComparisonAtom(x, ComparisonOp.NE, Constant('x";p0!="y'))],
        )
        keys_two = prefix_keys(plan_query(two_filters, db))[0]
        keys_forged = prefix_keys(plan_query(forged, db))[0]
        assert keys_two != keys_forged

        memo = SubplanMemo()
        for key in keys_two + keys_forged:
            memo.reserve(key)
        first = {b[x] for b in
                 execute_plan_shared(plan_query(two_filters, db), db,
                                     memo=memo)}
        second = {b[x] for b in
                  execute_plan_shared(plan_query(forged, db), db,
                                      memo=memo)}
        assert first == {"zz"}
        assert second == {"x", "y", "zz"}

    def test_renaming_covers_every_step_variable(self):
        db = make_db()
        plan = plan_query(parse_query(QUERY_T), db)
        __, renaming = prefix_keys(plan)
        step_vars = {
            var for step in plan.steps for var, __ in step.introduces
        }
        assert step_vars <= set(renaming)


class TestExecutePlanShared:
    def test_reserved_prefix_stored_then_seeded(self):
        db = make_db()
        planner = QueryPlanner(db)
        memo = SubplanMemo()
        plan_t = planner.plan(parse_query(QUERY_T))
        plan_u = planner.plan(parse_query(QUERY_U))
        shared = prefix_keys(plan_t)[0][1]
        assert shared == prefix_keys(plan_u)[0][1]
        memo.reserve(shared)

        first = ordered(execute_plan_shared(plan_t, db, memo=memo))
        assert memo.misses == 1 and memo.hits == 0 and memo.size == 1
        second = ordered(execute_plan_shared(plan_u, db, memo=memo))
        assert memo.hits == 1

        assert first == ordered(execute_plan(plan_t, db))
        assert second == ordered(execute_plan(plan_u, db))
        assert sorted(first) == sorted(
            ordered(reference_bindings(parse_query(QUERY_T), db))
        )
        assert sorted(second) == sorted(
            ordered(reference_bindings(parse_query(QUERY_U), db))
        )

    def test_full_plan_sharing_between_alpha_equivalent_queries(self):
        db = make_db()
        planner = QueryPlanner(db)
        memo = SubplanMemo()
        plan_a = planner.plan(parse_query(QUERY_T))
        plan_b = planner.plan(
            parse_query("Q(X, W) :- R(X, Y), S(Y, Z), T(Z, W)")
        )
        reserve_all(memo, plan_a)
        baseline_a = ordered(execute_plan(plan_a, db))
        baseline_b = ordered(execute_plan(plan_b, db))
        assert ordered(execute_plan_shared(plan_a, db, memo=memo)) == \
            baseline_a
        assert ordered(execute_plan_shared(plan_b, db, memo=memo)) == \
            baseline_b
        assert memo.hits == 1 and memo.misses == 1

    def test_seeded_parallel_matches_serial_order(self):
        db = make_db()
        planner = QueryPlanner(db)
        memo = SubplanMemo()
        plan_t = planner.plan(parse_query(QUERY_T))
        plan_u = planner.plan(parse_query(QUERY_U))
        memo.reserve(prefix_keys(plan_t)[0][1])
        serial_t = ordered(execute_plan(plan_t, db))
        serial_u = ordered(execute_plan(plan_u, db))
        assert ordered(
            execute_plan_shared(
                plan_t, db, memo=memo, parallelism=3, min_partition=2
            )
        ) == serial_t
        assert memo.misses == 1
        assert ordered(
            execute_plan_shared(
                plan_u, db, memo=memo, parallelism=3, min_partition=2
            )
        ) == serial_u
        assert memo.hits == 1

    def test_nothing_reserved_means_nothing_materialized(self):
        db = make_db()
        memo = SubplanMemo()
        memo.reserve("some-unrelated-key")  # memo is worth checking
        plan = plan_query(parse_query(QUERY_T), db)
        baseline = ordered(execute_plan(plan, db))
        assert ordered(execute_plan_shared(plan, db, memo=memo)) == baseline
        assert memo.size == 0 and memo.hits == 0 and memo.misses == 0

    def test_empty_plan_short_circuits(self):
        db = make_db()
        memo = SubplanMemo()
        plan = plan_query(parse_query("Q(A) :- R(A, B), B = 1, B = 2"), db)
        assert plan.empty
        assert list(execute_plan_shared(plan, db, memo=memo)) == []
        assert memo.size == 0


class TestInvalidation:
    @pytest.mark.parametrize("mutate", [
        lambda db: db.insert("R", 99, 0),
        lambda db: db.delete("R", 0, 0),
        lambda db: db.insert_all("R", [(100, 1), (101, 2)]),
        lambda db: db.insert_batch({"S": [(0, 7)], "R": [(102, 0)]}),
    ])
    def test_mutations_invalidate_stored_prefixes(self, mutate):
        db = make_db()
        memo = SubplanMemo()
        plan = plan_query(parse_query(QUERY_T), db)
        reserve_all(memo, plan)
        list(execute_plan_shared(plan, db, memo=memo))
        assert memo.misses == 1 and memo.size == 3

        mutate(db)
        # Replan (statistics changed) and re-execute: stale entries must
        # not be served, and results must reflect the mutated data.
        plan = plan_query(parse_query(QUERY_T), db)
        result = ordered(execute_plan_shared(plan, db, memo=memo))
        assert memo.hits == 0  # nothing stale was reused
        assert sorted(result) == sorted(
            ordered(reference_bindings(parse_query(QUERY_T), db))
        )
        # The re-materialized entries serve the next execution.
        assert ordered(execute_plan_shared(plan, db, memo=memo)) == result
        assert memo.hits == 1

    def test_virtual_content_change_invalidates(self):
        db = make_db()
        memo = SubplanMemo()
        rows = {"V": [(i, i % 2) for i in range(6)]}
        query = parse_query("Q(A, C) :- V(A, B), S(B, C)")

        virtual = IndexedVirtualRelations(rows)
        plan = plan_query(query, db, virtual)
        reserve_all(memo, plan)
        list(execute_plan_shared(plan, db, virtual, memo=memo))
        assert memo.misses == 1

        # Same sizes, different content: the fingerprint must change.
        changed = IndexedVirtualRelations(
            {"V": [(i + 50, i % 2) for i in range(6)]}
        )
        plan = plan_query(query, db, changed)
        result = ordered(
            execute_plan_shared(plan, db, changed, memo=memo)
        )
        assert memo.hits == 0
        assert sorted(result) == sorted(
            ordered(reference_bindings(query, db, changed))
        )


class TestSubplanMemo:
    def test_lru_eviction_and_counts(self):
        db = make_db()
        memo = SubplanMemo(max_entries=2)
        for index in range(3):
            memo.store(f"k{index}", [], db, 0, ())
        assert memo.size == 2
        assert memo.evictions == 1
        # The oldest entry was evicted.
        assert memo.lookup("k0", db, 0, ()) is None
        assert memo.lookup("k2", db, 0, ()) == []

    def test_lookup_refreshes_lru_order(self):
        db = make_db()
        memo = SubplanMemo(max_entries=2)
        memo.store("a", [], db, 0, ())
        memo.store("b", [], db, 0, ())
        memo.lookup("a", db, 0, ())  # refresh a; b becomes the LRU entry
        memo.store("c", [], db, 0, ())
        assert memo.lookup("a", db, 0, ()) is not None
        assert memo.lookup("b", db, 0, ()) is None

    def test_stale_entries_dropped_not_served(self):
        db = make_db()
        memo = SubplanMemo()
        memo.store("k", [{}], db, 3, ())
        assert memo.lookup("k", db, 4, ()) is None
        assert memo.size == 0

    def test_entries_are_bound_to_their_database(self):
        """Regression: equal keys over *different* database objects
        describe different data — one database's bindings must never be
        served for another, even at equal stats versions."""
        db_one, db_two = make_db(), make_db()
        memo = SubplanMemo()
        memo.store("k", [{}], db_one, db_one.stats_version, ())
        assert memo.lookup("k", db_two, db_two.stats_version, ()) is None
        assert memo.peek("k", db_two, db_two.stats_version, ()) is None
        # The entry survives for its own database.
        assert memo.lookup("k", db_one, db_one.stats_version, ()) == [{}]

    def test_cross_database_execution_never_reuses_bindings(self):
        schema = Schema([RelationSchema("W", ["a", "b"])])
        db_one = Database(schema)
        db_one.insert("W", 1, 2)
        db_two = Database(schema)
        db_two.insert("W", 3, 4)
        query = parse_query("Q(A, B) :- W(A, B)")
        memo = SubplanMemo()
        plan_one = plan_query(query, db_one)
        plan_two = plan_query(query, db_two)
        for key in prefix_keys(plan_one)[0] + prefix_keys(plan_two)[0]:
            memo.reserve(key)
        list(execute_plan_shared(plan_one, db_one, memo=memo))
        result = ordered(execute_plan_shared(plan_two, db_two, memo=memo))
        assert result == ordered(execute_plan(plan_two, db_two))

    def test_clear_resets_everything(self):
        db = make_db()
        memo = SubplanMemo(max_entries=1)
        memo.reserve("k")
        memo.store("a", [], db, 0, ())
        memo.store("b", [], db, 0, ())
        memo.hits += 2
        memo.misses += 1
        memo.clear()
        assert memo.size == 0
        assert not memo.worth_checking
        assert (memo.hits, memo.misses, memo.evictions) == (0, 0, 0)

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            SubplanMemo(max_entries=0)


class TestExplainWithMemo:
    def test_reserved_then_reused_rendering(self):
        db = make_db()
        planner = QueryPlanner(db)
        memo = SubplanMemo()
        plan_t = planner.plan(parse_query(QUERY_T))
        memo.reserve(prefix_keys(plan_t)[0][1])

        reserved = explain_with_memo(plan_t, memo, db)
        assert "shared prefix: steps 1-2 shared across the batch" in reserved

        list(execute_plan_shared(plan_t, db, memo=memo))
        reused = explain_with_memo(plan_t, memo, db)
        assert "shared prefix: steps 1-2 reused from memo" in reused
        # Observational only: no counters moved.
        assert memo.hits == 0

    def test_plain_plan_renders_unchanged(self):
        db = make_db()
        plan = plan_query(parse_query(QUERY_T), db)
        assert explain_with_memo(plan, SubplanMemo(), db) == plan.explain()
