"""Tests for the Datalog-style parser."""

import pytest

from repro.cq.parser import parse_atom, parse_query
from repro.cq.terms import Constant, Variable
from repro.errors import ParseError, UnsafeQueryError
from repro.relational.expressions import ComparisonOp


class TestBasicParsing:
    def test_simple_query(self):
        q = parse_query("Q(X) :- R(X, Y)")
        assert q.name == "Q"
        assert q.head == (Variable("X"),)
        assert q.atoms[0].relation == "R"

    def test_multiple_atoms(self):
        q = parse_query("Q(X) :- R(X, Y), S(Y, Z), T(Z)")
        assert [a.relation for a in q.atoms] == ["R", "S", "T"]

    def test_paper_query(self):
        q = parse_query(
            'Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)'
        )
        assert len(q.atoms) == 2
        assert len(q.comparisons) == 1
        comparison = q.comparisons[0]
        assert comparison.left == Variable("Ty")
        assert comparison.op is ComparisonOp.EQ
        assert comparison.right == Constant("gpcr")


class TestLambdaClause:
    def test_single_parameter(self):
        q = parse_query("lambda F. V1(F, N) :- Family(F, N, Ty)")
        assert [p.name for p in q.parameters] == ["F"]

    def test_multiple_parameters(self):
        q = parse_query("lambda F, Ty. V(F, N, Ty) :- Family(F, N, Ty)")
        assert [p.name for p in q.parameters] == ["F", "Ty"]

    def test_unicode_lambda(self):
        q = parse_query("λ F. V(F, N) :- Family(F, N, Ty)")
        assert q.is_parameterized

    def test_parameter_must_be_variable(self):
        with pytest.raises(ParseError):
            parse_query('lambda "x". V(F) :- R(F)')


class TestTerms:
    def test_quoted_strings(self):
        q = parse_query("""Q(X) :- R(X, 'single'), S(X, "double")""")
        assert q.atoms[0].terms[1] == Constant("single")
        assert q.atoms[1].terms[1] == Constant("double")

    def test_numbers(self):
        q = parse_query("Q(X) :- R(X, 3, -2, 4.5)")
        assert q.atoms[0].terms[1:] == (Constant(3), Constant(-2),
                                        Constant(4.5))

    def test_booleans(self):
        q = parse_query("Q(X) :- R(X, true, false)")
        assert q.atoms[0].terms[1:] == (Constant(True), Constant(False))

    def test_lowercase_identifier_is_string_constant(self):
        q = parse_query("Q(X) :- R(X, gpcr)")
        assert q.atoms[0].terms[1] == Constant("gpcr")

    def test_underscore_starts_variable(self):
        q = parse_query("Q(X) :- R(X, _y)")
        assert q.atoms[0].terms[1] == Variable("_y")


class TestComparisons:
    @pytest.mark.parametrize("op_text,op", [
        ("=", ComparisonOp.EQ), ("!=", ComparisonOp.NE),
        ("<>", ComparisonOp.NE), ("<", ComparisonOp.LT),
        ("<=", ComparisonOp.LE), (">", ComparisonOp.GT),
        (">=", ComparisonOp.GE),
    ])
    def test_all_operators(self, op_text, op):
        q = parse_query(f"Q(X) :- R(X), X {op_text} 3")
        assert q.comparisons[0].op is op

    def test_variable_to_variable(self):
        q = parse_query("Q(X, Y) :- R(X), S(Y), X < Y")
        assert q.comparisons[0].variables() == [Variable("X"), Variable("Y")]


class TestErrors:
    def test_missing_arrow(self):
        with pytest.raises(ParseError):
            parse_query("Q(X) R(X)")

    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse_query("Q(X :- R(X)")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_query("Q(X) :- R(X) extra(Y)")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_query("Q(X) :- R(X) & S(X)")

    def test_unsafe_query_rejected_at_parse(self):
        with pytest.raises(UnsafeQueryError):
            parse_query("Q(Z) :- R(X)")

    def test_error_position_reported(self):
        try:
            parse_query("Q(X) :- ")
        except ParseError as exc:
            assert exc.position is not None
        else:
            pytest.fail("expected ParseError")


class TestParseAtom:
    def test_atom(self):
        atom = parse_atom('Family(F, "x", 3)')
        assert atom.relation == "Family"
        assert atom.terms == (Variable("F"), Constant("x"), Constant(3))

    def test_atom_rejects_body(self):
        with pytest.raises(ParseError):
            parse_atom("Q(X) :- R(X)")


class TestAlternativeArrow:
    def test_prolog_arrow(self):
        q = parse_query("Q(X) <- R(X)")
        assert q.atoms[0].relation == "R"
