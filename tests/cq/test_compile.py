"""Tests for the CQ → relational-algebra compiler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq.compile import compile_to_algebra
from repro.cq.evaluation import evaluate_query
from repro.cq.parser import parse_query
from repro.errors import QueryError
from repro.gtopdb.generator import GtopdbGenerator
from repro.gtopdb.sample import paper_database
from repro.relational.algebra import evaluate as algebra_evaluate
from repro.workload.queries import QueryGenerator


@pytest.fixture(scope="module")
def db():
    return paper_database()


def cross_check(query, db):
    direct = sorted(evaluate_query(query, db))
    plan = compile_to_algebra(query, db.schema)
    via_algebra = sorted(algebra_evaluate(plan, db).rows)
    assert direct == via_algebra, query
    return direct


class TestBasicCompilation:
    def test_single_atom(self, db):
        cross_check(parse_query("Q(N) :- Family(F, N, Ty)"), db)

    def test_join(self, db):
        cross_check(
            parse_query("Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)"),
            db,
        )

    def test_selection(self, db):
        rows = cross_check(
            parse_query('Q(N) :- Family(F, N, Ty), Ty = "gpcr"'), db
        )
        assert ("Calcitonin",) in rows

    def test_inline_constant(self, db):
        cross_check(parse_query('Q(N) :- Family("11", N, Ty)'), db)

    def test_repeated_variable_in_atom(self, db):
        db2 = paper_database()
        db2.insert("MetaData", "same", "same")
        cross_check(parse_query("Q(T) :- MetaData(T, T)"), db2)

    def test_three_way_join(self, db):
        cross_check(
            parse_query(
                "Q(N, Pn) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A)"
            ),
            db,
        )

    def test_variable_comparison(self, db):
        cross_check(
            parse_query("Q(F1, F2) :- Family(F1, N1, Ty), "
                        "Family(F2, N2, Ty), F1 < F2"),
            db,
        )

    def test_ground_false_comparison(self, db):
        query = parse_query("Q(N) :- Family(F, N, Ty), 2 < 1")
        plan = compile_to_algebra(query, db.schema)
        assert algebra_evaluate(plan, db).rows == []


class TestRejections:
    def test_parameterized_rejected(self, db):
        with pytest.raises(QueryError):
            compile_to_algebra(
                parse_query("lambda F. V(F, N) :- Family(F, N, Ty)"),
                db.schema,
            )

    def test_head_constant_rejected(self, db):
        with pytest.raises(QueryError):
            compile_to_algebra(
                parse_query('Q(N, "tag") :- Family(F, N, Ty)'), db.schema
            )


class TestRandomCrossValidation:
    @given(st.integers(0, 2000))
    @settings(max_examples=40, deadline=None)
    def test_compiler_agrees_with_evaluator(self, seed):
        db = GtopdbGenerator(families=10, persons=6, types=3,
                             seed=seed % 13).build()
        generator = QueryGenerator(db.schema, db, seed=seed, max_atoms=3)
        query = generator.generate()
        cross_check(query, db)
