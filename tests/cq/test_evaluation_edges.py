"""Edge cases of CQ evaluation: degenerate bodies, join ordering."""

import pytest

from repro.cq.atoms import ComparisonAtom, RelationalAtom
from repro.cq.evaluation import enumerate_bindings, evaluate_query
from repro.cq.parser import parse_query
from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Constant, Variable
from repro.relational.database import Database
from repro.relational.expressions import ComparisonOp
from repro.relational.schema import RelationSchema, Schema


@pytest.fixture
def db():
    schema = Schema([
        RelationSchema("R", ["a", "b"]),
        RelationSchema("Big", ["x"]),
        RelationSchema("Small", ["x"]),
    ])
    database = Database(schema)
    database.insert_all("R", [(i, i * 10) for i in range(20)])
    database.insert_all("Big", [(i,) for i in range(50)])
    database.insert("Small", 3)
    return database


class TestDegenerateBodies:
    def test_ground_head_constant_only(self, db):
        q = ConjunctiveQuery(
            "Q",
            [Constant("yes")],
            [RelationalAtom("Small", [Variable("X")])],
        )
        assert evaluate_query(q, db) == [("yes",)]

    def test_ground_comparisons_only_body(self, db):
        # A body with zero relational atoms and only true ground
        # comparisons yields one empty binding.
        q = ConjunctiveQuery(
            "Q",
            [Constant(1)],
            [],
            [ComparisonAtom(Constant(1), ComparisonOp.LT, Constant(2))],
        )
        assert evaluate_query(q, db) == [(1,)]

    def test_false_ground_comparisons_only_body(self, db):
        q = ConjunctiveQuery(
            "Q",
            [Constant(1)],
            [],
            [ComparisonAtom(Constant(2), ComparisonOp.LT, Constant(1))],
        )
        assert evaluate_query(q, db) == []


class TestJoinOrdering:
    def test_selective_atom_first_semantics_unchanged(self, db):
        # Regardless of greedy join ordering, results must match.
        q1 = parse_query("Q(X) :- Big(X), Small(X)")
        q2 = parse_query("Q(X) :- Small(X), Big(X)")
        assert evaluate_query(q1, db) == evaluate_query(q2, db) == [(3,)]

    def test_cross_product_then_filter(self, db):
        q = parse_query("Q(X, Y) :- Small(X), Small(Y), X = Y")
        assert evaluate_query(q, db) == [(3, 3)]

    def test_comparison_scheduled_at_binding_time(self, db):
        # The comparison's variables span two atoms; it can only fire
        # after both are bound.
        q = parse_query("Q(A) :- R(A, B), Big(X), B < X")
        results = evaluate_query(q, db)
        assert (0,) in results  # B=0 < some Big.x
        assert (4,) in results  # B=40 < 41..49

    def test_binding_count_with_duplicated_atom(self, db):
        q = parse_query("Q(A) :- R(A, B), R(A, B)")
        bindings = list(enumerate_bindings(q, db))
        # Duplicate atoms do not multiply bindings (same constraint).
        assert len(bindings) == 20


class TestConstantsInHead:
    def test_mixed_head(self, db):
        q = parse_query('Q(A, "tag", B) :- R(A, B), A = 3')
        assert evaluate_query(q, db) == [(3, "tag", 30)]
