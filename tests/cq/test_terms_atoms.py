"""Tests for terms and atoms."""


from repro.cq.atoms import ComparisonAtom, RelationalAtom
from repro.cq.terms import Constant, Variable, as_term
from repro.relational.expressions import ComparisonOp


class TestTerms:
    def test_variable_equality(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_constant_equality_is_type_strict(self):
        assert Constant(1) == Constant(1)
        assert Constant(1) != Constant("1")
        assert Constant(1) != Constant(1.0)

    def test_variable_constant_never_equal(self):
        assert Variable("X") != Constant("X")

    def test_hashable(self):
        assert len({Variable("X"), Variable("X"), Constant("X")}) == 2

    def test_as_term(self):
        assert as_term("x") == Constant("x")
        assert as_term(Variable("X")) == Variable("X")

    def test_repr(self):
        assert repr(Variable("X")) == "X"
        assert repr(Constant("s")) == '"s"'
        assert repr(Constant(3)) == "3"

    def test_kind_predicates(self):
        assert Variable("X").is_variable and not Variable("X").is_constant
        assert Constant(1).is_constant and not Constant(1).is_variable


class TestRelationalAtom:
    def test_variables_ordered_deduped(self):
        atom = RelationalAtom("R", [Variable("X"), Variable("Y"),
                                    Variable("X"), Constant(1)])
        assert atom.variables() == [Variable("X"), Variable("Y")]
        assert atom.constants() == [Constant(1)]

    def test_substitute(self):
        atom = RelationalAtom("R", [Variable("X"), Variable("Y")])
        result = atom.substitute({Variable("X"): Constant(5)})
        assert result == RelationalAtom("R", [Constant(5), Variable("Y")])

    def test_substitution_leaves_constants(self):
        atom = RelationalAtom("R", [Constant(1)])
        assert atom.substitute({Variable("X"): Constant(2)}) == atom

    def test_equality_hash(self):
        a = RelationalAtom("R", [Variable("X")])
        b = RelationalAtom("R", [Variable("X")])
        assert a == b and hash(a) == hash(b)
        assert a != RelationalAtom("S", [Variable("X")])


class TestComparisonAtom:
    def test_ground_evaluation(self):
        atom = ComparisonAtom(Constant(2), ComparisonOp.LT, Constant(3))
        assert atom.is_ground and atom.evaluate_ground()
        atom2 = ComparisonAtom(Constant(3), ComparisonOp.LT, Constant(2))
        assert not atom2.evaluate_ground()

    def test_mixed_type_ground_is_false(self):
        atom = ComparisonAtom(Constant("a"), ComparisonOp.LT, Constant(3))
        assert not atom.evaluate_ground()

    def test_variables(self):
        atom = ComparisonAtom(Variable("X"), ComparisonOp.EQ, Variable("Y"))
        assert atom.variables() == [Variable("X"), Variable("Y")]
        atom2 = ComparisonAtom(Variable("X"), ComparisonOp.EQ, Variable("X"))
        assert atom2.variables() == [Variable("X")]

    def test_normalized_puts_variable_left(self):
        atom = ComparisonAtom(Constant(3), ComparisonOp.GT, Variable("X"))
        normalized = atom.normalized()
        assert normalized.left == Variable("X")
        assert normalized.op is ComparisonOp.LT
        assert normalized.right == Constant(3)

    def test_normalized_orders_variables_lexicographically(self):
        atom = ComparisonAtom(Variable("Y"), ComparisonOp.EQ, Variable("X"))
        normalized = atom.normalized()
        assert normalized.left == Variable("X")

    def test_normalized_preserves_semantics(self):
        atom = ComparisonAtom(Constant(5), ComparisonOp.LE, Variable("X"))
        normalized = atom.normalized()
        # 5 <= X becomes X >= 5
        assert normalized.op is ComparisonOp.GE

    def test_substitute(self):
        atom = ComparisonAtom(Variable("X"), ComparisonOp.NE, Constant(1))
        result = atom.substitute({Variable("X"): Constant(1)})
        assert result.is_ground and not result.evaluate_ground()
