"""Tests for the citation-view triple (Def 2.1)."""

import pytest

from repro.errors import ParameterError, ViewError
from repro.views.citation_view import (
    CitationView,
    RecordCitationFunction,
    default_citation_function,
)


class TestConstruction:
    def test_from_strings(self):
        view = CitationView.from_strings(
            view="lambda F. V1(F, N, Ty) :- Family(F, N, Ty)",
            citation_query=(
                "lambda F. CV1(F, N, Pn) :- Family(F, N, Ty), FC(F, C), "
                "Person(C, Pn, A)"
            ),
            labels=("ID", "Name", "Committee"),
        )
        assert view.name == "V1"
        assert [p.name for p in view.parameters] == ["F"]

    def test_parameter_names_must_match(self):
        with pytest.raises(ParameterError):
            CitationView.from_strings(
                view="lambda F. V(F, N) :- Family(F, N, Ty)",
                citation_query="lambda G. CV(G, N) :- Family(G, N, Ty)",
            )

    def test_parameter_must_be_head_variable(self):
        # Def 2.1 requires X ⊆ Y for the view definition.
        with pytest.raises(ViewError):
            CitationView.from_strings(
                view="lambda Ty. V(F, N) :- Family(F, N, Ty)",
                citation_query="lambda Ty. CV(N) :- Family(F, N, Ty)",
            )

    def test_citation_query_parameter_need_not_be_head(self):
        # For C_V the paper only requires X ⊆ vars(Q').
        CitationView.from_strings(
            view="lambda F. V(F, N) :- Family(F, N, Ty)",
            citation_query="lambda F. CV(N) :- Family(F, N, Ty)",
        )

    def test_label_count_checked(self):
        with pytest.raises(ViewError):
            CitationView.from_strings(
                view="V(F) :- Family(F, N, Ty)",
                citation_query="CV(F, N) :- Family(F, N, Ty)",
                labels=("one",),
            )

    def test_default_labels(self):
        view = CitationView.from_strings(
            view="V(F) :- Family(F, N, Ty)",
            citation_query="CV(F, N) :- Family(F, N, Ty)",
        )
        assert view.labels == ("col0", "col1")

    def test_parameter_positions(self):
        view = CitationView.from_strings(
            view="lambda Ty, F. V(F, N, Ty) :- Family(F, N, Ty)",
            citation_query="lambda Ty, F. CV(Ty) :- Family(F, N, Ty)",
        )
        assert view.parameter_positions() == (2, 0)


class TestSemantics:
    def test_instance_with_params(self, db, registry):
        v1 = registry.get("V1")
        assert v1.instance(db, ["11"]) == [("11", "Calcitonin", "gpcr")]

    def test_instance_unparameterized_extension(self, db, registry):
        v1 = registry.get("V1")
        assert len(v1.instance(db)) == len(db.relation("Family"))

    def test_citation_rows(self, db, registry):
        v1 = registry.get("V1")
        rows = v1.citation_rows(db, ["11"])
        names = {row[2] for row in rows}
        assert names == {"Hay", "Poyner"}

    def test_citation_for_wrong_arity(self, db, registry):
        with pytest.raises(ParameterError):
            registry.get("V1").citation_for(db, ())

    def test_citation_for_empty_instance(self, db, registry):
        record = registry.get("V1").citation_for(db, ("no-such-family",))
        assert record == {}


class TestCitationFunctions:
    def test_default_folds_multivalued_columns(self):
        rows = [("11", "Calcitonin", "Hay"), ("11", "Calcitonin", "Poyner")]
        record = default_citation_function(
            rows, ("ID", "Name", "Committee"), {}
        )
        assert record == {"ID": "11", "Name": "Calcitonin",
                          "Committee": ["Hay", "Poyner"]}

    def test_default_empty_rows(self):
        assert default_citation_function([], ("A",), {}) == {}

    def test_record_function_forces_lists(self):
        fn = RecordCitationFunction(list_fields=("Committee",))
        record = fn([("11", "Hay")], ("ID", "Committee"), {})
        assert record == {"ID": "11", "Committee": ["Hay"]}

    def test_record_function_constant_fields(self):
        fn = RecordCitationFunction(constant_fields={"Database": "GtoPdb"})
        record = fn([("11",)], ("ID",), {})
        assert record["Database"] == "GtoPdb"

    def test_unsortable_values_fall_back_to_repr_order(self):
        record = default_citation_function(
            [(1,), ("a",)], ("Mixed",), {}
        )
        assert len(record["Mixed"]) == 2


class TestHoistedParameterlessQueries:
    """Regression: the zero-param extension queries must be derived once
    at construction, not rebuilt by ``with_parameters(())`` per call."""

    def test_extension_queries_cached_on_construction(self, registry):
        v1 = registry.get("V1")
        assert v1._view_extension is v1._view_extension
        assert not v1._view_extension.is_parameterized
        assert not v1._citation_extension.is_parameterized
        # Unparameterized views reuse the original query objects.
        v3 = registry.get("V3")
        assert v3._view_extension is v3.view
        assert v3._citation_extension is v3.citation_query

    def test_zero_param_calls_reuse_the_cached_query(self, db, registry):
        from repro.cq.plan import QueryPlanner

        v1 = registry.get("V1")
        planner = QueryPlanner(db)
        first = v1.instance(db, planner=planner)
        assert v1.instance(db, planner=planner) == first
        # Object-identical queries ride the planner's exact-match fast
        # path: the repeat is a pure hit, with no new entry.
        assert planner.hits >= 1
        assert planner.misses == 1

    def test_planned_instance_equals_unplanned(self, db, registry):
        from repro.cq.plan import QueryPlanner

        planner = QueryPlanner(db)
        for name in registry.names:
            view = registry.get(name)
            assert view.instance(db, planner=planner) == view.instance(db)
            assert (
                view.citation_rows(db, planner=planner)
                == view.citation_rows(db)
            )

    def test_materialize_accepts_planner(self, db, registry):
        from repro.cq.plan import QueryPlanner

        planner = QueryPlanner(db)
        assert registry.materialize(db, planner=planner) == \
            registry.materialize(db)
        assert planner.misses > 0
