"""Tests for view inclusion (Example 3.8's 'best fit' order)."""

from repro.views.citation_view import CitationView
from repro.views.inclusion import view_included_in, view_strictly_finer


def make(view, cq=None, name=None):
    return CitationView.from_strings(
        view=view, citation_query=cq or view.replace("V(", "CV(", 1)
    )


class TestInclusion:
    def test_v1_included_in_v3_and_vice_versa(self, registry):
        # Same body, same head: extensions coincide.
        v1, v3 = registry.get("V1"), registry.get("V3")
        assert view_included_in(v1, v3)
        assert view_included_in(v3, v1)

    def test_v1_strictly_finer_than_v3(self, registry):
        # Equal extensions, but λF partitions more finely than no λ.
        v1, v3 = registry.get("V1"), registry.get("V3")
        assert view_strictly_finer(v1, v3)
        assert not view_strictly_finer(v3, v1)

    def test_v1_and_v4_equivalent_extensions(self, registry):
        v1, v4 = registry.get("V1"), registry.get("V4")
        assert view_included_in(v1, v4)
        assert view_included_in(v4, v1)
        # Same parameter count: neither strictly finer.
        assert not view_strictly_finer(v1, v4)
        assert not view_strictly_finer(v4, v1)

    def test_different_arities_incomparable(self, registry):
        v1, v2 = registry.get("V1"), registry.get("V2")
        assert not view_included_in(v1, v2)
        assert not view_included_in(v2, v1)

    def test_selective_view_strictly_included(self):
        narrow = make('V(F, N, Ty) :- Family(F, N, Ty), Ty = "gpcr"')
        wide = make("V(F, N, Ty) :- Family(F, N, Ty)")
        assert view_included_in(narrow, wide)
        assert not view_included_in(wide, narrow)
        assert view_strictly_finer(narrow, wide)

    def test_join_view_included_in_projection_compatible_base(self):
        joined = CitationView.from_strings(
            view="V(F, N, Ty) :- Family(F, N, Ty), FamilyIntro(F, Tx)",
            citation_query="CV(F) :- Family(F, N, Ty)",
        )
        base = make("V(F, N, Ty) :- Family(F, N, Ty)")
        assert view_included_in(joined, base)
        assert not view_included_in(base, joined)

    def test_registry_views_validate(self, registry):
        # Sanity: pairwise inclusion never crashes across V1..V5.
        views = list(registry)
        for a in views:
            for b in views:
                view_included_in(a, b)
