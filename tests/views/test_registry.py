"""Tests for the view registry."""

import pytest

from repro.errors import DuplicateViewError, UnknownRelationError, ViewError
from repro.gtopdb.schema import gtopdb_schema
from repro.views.citation_view import CitationView
from repro.views.registry import ViewRegistry


def make_view(name="V9"):
    return CitationView.from_strings(
        view=f"lambda F. {name}(F, N) :- Family(F, N, Ty)",
        citation_query=f"lambda F. C{name}(F, N) :- Family(F, N, Ty)",
    )


class TestAdd:
    def test_duplicate_name_rejected(self):
        registry = ViewRegistry(gtopdb_schema(), [make_view()])
        with pytest.raises(DuplicateViewError):
            registry.add(make_view())

    def test_clash_with_base_relation_rejected(self):
        registry = ViewRegistry(gtopdb_schema())
        with pytest.raises(ViewError):
            registry.add(make_view(name="Family"))

    def test_unknown_relation_in_body_rejected(self):
        view = CitationView.from_strings(
            view="V(X) :- Nope(X)",
            citation_query="CV(X) :- Nope(X)",
        )
        with pytest.raises(UnknownRelationError):
            ViewRegistry(gtopdb_schema(), [view])

    def test_arity_mismatch_rejected(self):
        view = CitationView.from_strings(
            view="V(F) :- Family(F, N)",  # Family has arity 3
            citation_query="CV(F) :- Family(F, N)",
        )
        with pytest.raises(Exception):
            ViewRegistry(gtopdb_schema(), [view])

    def test_unknown_relation_in_citation_query_rejected(self):
        view = CitationView.from_strings(
            view="V(F) :- Family(F, N, Ty)",
            citation_query="CV(X) :- Nope(X)",
        )
        with pytest.raises(UnknownRelationError):
            ViewRegistry(gtopdb_schema(), [view])


class TestAccess:
    def test_get_and_contains(self, registry):
        assert registry.get("V1").name == "V1"
        assert "V1" in registry and "V9" not in registry

    def test_get_unknown_raises(self, registry):
        with pytest.raises(ViewError):
            registry.get("V9")

    def test_names_in_order(self, registry):
        assert registry.names == ("V1", "V2", "V3", "V4", "V5")

    def test_len_and_iter(self, registry):
        assert len(registry) == 5
        assert [v.name for v in registry] == list(registry.names)


class TestMaterialize:
    def test_extensions_match_definitions(self, db, registry):
        materialized = registry.materialize(db)
        assert set(materialized) == set(registry.names)
        # V1's unparameterized extension is the whole Family table.
        assert len(materialized["V1"]) == len(db.relation("Family"))
        # V5 joins Family with FamilyIntro.
        assert len(materialized["V5"]) == len(db.relation("FamilyIntro"))

    def test_subset_materialization(self, db, registry):
        materialized = registry.materialize(db, names=["V3"])
        assert set(materialized) == {"V3"}
