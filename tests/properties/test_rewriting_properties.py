"""Property-based tests for the rewriting engine.

The central invariant (Def 2.2): every emitted rewriting is *equivalent*
to the input query — checked semantically by evaluating both against
random databases with the views materialized.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq.evaluation import evaluate_query
from repro.cq.parser import parse_query
from repro.gtopdb.generator import GtopdbGenerator
from repro.gtopdb.views import paper_registry
from repro.rewriting.engine import enumerate_rewritings
from repro.workload.queries import QueryGenerator

REGISTRY = paper_registry()

QUERY_TEXTS = [
    "Q(N) :- Family(F, N, Ty)",
    'Q(N) :- Family(F, N, Ty), Ty = "gpcr"',
    "Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)",
    'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"',
    "Q(F, Tx) :- FamilyIntro(F, Tx)",
    "Q(N, Pn) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A)",
    'Q(Pn) :- FC(F, C), Person(C, Pn, A), F = "11"',
    "Q(N1, N2) :- Family(F1, N1, Ty), Family(F2, N2, Ty)",
    'Q(Tx) :- FamilyIntro(F, Tx), Family(F, N, Ty), N = "Orexin"',
]


@st.composite
def gtopdb_databases(draw):
    seed = draw(st.integers(0, 10_000))
    families = draw(st.integers(3, 25))
    return GtopdbGenerator(
        families=families, persons=10, types=3,
        intro_fraction=0.7, seed=seed,
    ).build()


class TestRewritingEquivalence:
    @given(st.sampled_from(QUERY_TEXTS), gtopdb_databases())
    @settings(max_examples=40, deadline=None)
    def test_rewritings_evaluate_identically(self, text, db):
        query = parse_query(text)
        expected = sorted(evaluate_query(query, db))
        virtual = REGISTRY.materialize(db)
        for rewriting in enumerate_rewritings(query, REGISTRY):
            got = sorted(
                evaluate_query(rewriting.query, db, virtual=virtual)
            )
            assert got == expected, rewriting

    @given(st.sampled_from(QUERY_TEXTS))
    @settings(max_examples=20, deadline=None)
    def test_enumeration_deterministic(self, text):
        query = parse_query(text)
        runs = [
            [repr(r.query) for r in enumerate_rewritings(query, REGISTRY)]
            for __ in range(2)
        ]
        assert runs[0] == runs[1]

    @given(st.sampled_from(QUERY_TEXTS))
    @settings(max_examples=20, deadline=None)
    def test_classification_consistent(self, text):
        query = parse_query(text)
        for rewriting in enumerate_rewritings(query, REGISTRY):
            assert rewriting.is_total == (not rewriting.uncovered_atoms)
            assert rewriting.view_count == len(rewriting.applications)
            assert rewriting.uncovered_count == len(
                rewriting.uncovered_atoms
            )


class TestRandomWorkloadRewriting:
    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_random_queries_rewrite_equivalently(self, seed):
        db = GtopdbGenerator(families=12, persons=8, types=3,
                             seed=seed % 17).build()
        generator = QueryGenerator(db.schema, db, seed=seed, max_atoms=2)
        query = generator.generate()
        expected = sorted(evaluate_query(query, db))
        virtual = REGISTRY.materialize(db)
        for rewriting in enumerate_rewritings(query, REGISTRY):
            got = sorted(
                evaluate_query(rewriting.query, db, virtual=virtual)
            )
            assert got == expected, (query, rewriting)
