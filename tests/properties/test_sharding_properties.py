"""Property-based tests: storage sharding never changes anything.

The hard invariant of hash-partitioned relation storage
(``Database(schema, shards=N)``) is that it is *invisible* except for
where rows live: planned results are identical to the unsharded
database's — same multiset AND same order — for serial, thread-pool,
and process-pool execution, across arbitrary insert/delete/bulk-load
mutation sequences and any shard count (including more shards than
rows); and the merge of the per-shard statistics equals the aggregate
statistics an unsharded instance maintains, which is why the planner's
estimates never move.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq.executor import execute_plan
from repro.cq.parallel import execute_plan_parallel
from repro.cq.parser import parse_query
from repro.cq.plan import plan_query
from repro.relational.database import Database
from repro.relational.schema import RelationSchema, Schema
from repro.relational.statistics import RelationStatistics
from repro.relational.tuples import Row

#: Shard counts the issue calls out: unsharded, small, odd, and more
#: shards than the databases below ever hold rows.
SHARD_COUNTS = [1, 2, 7, 1000]

QUERIES = [
    "Q(A, C) :- R(A, B), S(B, C)",
    "Q(A, C) :- R(A, 1), S(1, C)",
    "Q(A, C) :- R(A, B), S(B, C), A < C",
    "Q(A, X) :- R(A, B), R(B, X)",
]


def _schema() -> Schema:
    return Schema([
        RelationSchema("R", ["a", "b"]),
        RelationSchema("S", ["b", "c"]),
    ])


@st.composite
def mutation_sequences(draw):
    """A random program of insert / delete / bulk-load mutations."""
    ops = []
    live: list[tuple[str, int, int]] = []
    for __ in range(draw(st.integers(1, 12))):
        kind = draw(st.sampled_from(["insert", "bulk", "delete"]))
        relation = draw(st.sampled_from(["R", "S"]))
        if kind == "insert":
            values = (draw(st.integers(0, 6)), draw(st.integers(0, 6)))
            ops.append(("insert", relation, values))
            live.append((relation, *values))
        elif kind == "bulk":
            base = draw(st.integers(0, 50))
            size = draw(st.integers(1, 120))
            rows = [(base + i, (base + i) % 7) for i in range(size)]
            ops.append(("bulk", relation, rows))
            live.extend((relation, *values) for values in rows)
        elif live:
            target = draw(st.sampled_from(live))
            ops.append(("delete", target[0], target[1:]))
    return ops


def _apply(db: Database, ops) -> None:
    for kind, relation, payload in ops:
        if kind == "insert":
            db.insert(relation, *payload)
        elif kind == "bulk":
            db.insert_all(relation, payload)
        else:
            db.relation(relation).delete(Row(relation, payload))


def _build(ops, shards: int) -> Database:
    db = Database(_schema(), shards=shards)
    _apply(db, ops)
    return db


class TestShardedEqualsUnsharded:
    @given(mutation_sequences(), st.sampled_from(SHARD_COUNTS),
           st.sampled_from(QUERIES))
    @settings(max_examples=40, deadline=None)
    def test_serial_results_identical(self, ops, shards, text):
        """Serial execution is byte-identical at any shard count:
        sharding only adds partition-local structures."""
        unsharded = _build(ops, 1)
        sharded = _build(ops, shards)
        query = parse_query(text)
        reference = list(execute_plan(plan_query(query, unsharded),
                                      unsharded))
        result = list(execute_plan(plan_query(query, sharded), sharded))
        assert result == reference  # multiset AND order

    @given(mutation_sequences(), st.sampled_from(SHARD_COUNTS),
           st.sampled_from(QUERIES), st.sampled_from([2, 3, 8]))
    @settings(max_examples=40, deadline=None)
    def test_thread_results_identical(self, ops, shards, text, parallelism):
        """Thread-pool execution (shard-parallel first-step seeding when
        the storage is partitioned) matches serial unsharded exactly."""
        unsharded = _build(ops, 1)
        sharded = _build(ops, shards)
        query = parse_query(text)
        reference = list(execute_plan(plan_query(query, unsharded),
                                      unsharded))
        result = list(execute_plan_parallel(
            plan_query(query, sharded), sharded,
            parallelism=parallelism, min_partition=1,
        ))
        assert result == reference

    @given(mutation_sequences(), st.sampled_from(SHARD_COUNTS))
    @settings(max_examples=30, deadline=None)
    def test_merged_shard_statistics_equal_unsharded(self, ops, shards):
        """Aggregate statistics ≡ merge of per-shard statistics ≡ the
        unsharded instance's statistics, for every relation."""
        unsharded = _build(ops, 1)
        sharded = _build(ops, shards)
        for rel in ("R", "S"):
            expected = unsharded.relation(rel).stats
            instance = sharded.relation(rel)
            for stats in (
                instance.stats,
                RelationStatistics.merged(
                    instance.shard_statistics(), instance.schema.arity
                ),
            ):
                assert stats.cardinality == expected.cardinality
                for position in range(instance.schema.arity):
                    assert stats.distinct(position) == expected.distinct(
                        position
                    )
                    assert (
                        stats._column_counts[position]
                        == expected._column_counts[position]
                    )

    @given(mutation_sequences(), st.sampled_from(SHARD_COUNTS))
    @settings(max_examples=30, deadline=None)
    def test_reshard_preserves_rows_and_statistics(self, ops, shards):
        """Resharding in place is equivalent to building sharded."""
        resharded = _build(ops, 1)
        resharded.reshard(shards)
        built = _build(ops, shards)
        for rel in ("R", "S"):
            assert resharded.relation(rel).rows() == built.relation(rel).rows()
            merged = RelationStatistics.merged(
                resharded.relation(rel).shard_statistics(),
                resharded.relation(rel).schema.arity,
            )
            assert merged.cardinality == len(resharded.relation(rel))


class TestProcessExecution:
    """One deterministic process-pool case per shape (spawn cost bounds
    how many examples are affordable; the thread/serial properties above
    cover the merge logic exhaustively)."""

    def _database(self, shards: int) -> Database:
        db = Database(_schema(), shards=shards)
        db.insert_batch({
            "R": [(i, i % 9) for i in range(240)],
            "S": [(b, b * 2) for b in range(9)],
        })
        for i in range(0, 240, 5):
            db.relation("R").delete(Row("R", (i, i % 9)))
        db.insert_all("R", [(500 + i, i % 9) for i in range(80)])
        return db

    def test_process_results_identical_scan_and_probe(self):
        for text in QUERIES:
            unsharded = self._database(1)
            reference = list(execute_plan(
                plan_query(parse_query(text), unsharded), unsharded
            ))
            for shards in (3, 1000):
                db = self._database(shards)
                result = list(execute_plan_parallel(
                    plan_query(parse_query(text), db), db,
                    parallelism=3, use_processes=True, min_partition=1,
                ))
                assert result == reference, (text, shards)
