"""Property: every plan the planner emits passes the plan verifier.

The verifier (:mod:`repro.analysis.verifier`) re-derives the pushdown
closures and access-path discipline from first principles; if the
planner and the verifier ever disagree on a random query, one of them
has a bug. This suite drives random queries — serial, cached/rebound,
sharded, and union-shaped — through planning and asserts a clean bill
of health, which is what lets ``--verify-plans`` run over the whole
test suite without false positives.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import check_plan, verify_plan
from repro.cq.atoms import ComparisonAtom, RelationalAtom
from repro.cq.plan import QueryPlanner, plan_query
from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Constant, Variable
from repro.cq.ucq import UnionQuery
from repro.relational.database import Database
from repro.relational.expressions import ComparisonOp
from repro.relational.schema import RelationSchema, Schema

BASE_ARITIES = {"R": 2, "S": 2, "T": 3}
VIRTUAL_ARITIES = {"VR": 2}
ARITIES = {**BASE_ARITIES, **VIRTUAL_ARITIES}

VALUES = st.integers(min_value=0, max_value=4)
MIXED_VALUES = st.one_of(
    VALUES, st.sampled_from(["a", "b"]), st.just(float("nan"))
)
VARIABLES = [Variable(f"X{i}") for i in range(6)]


def make_schema() -> Schema:
    return Schema([
        RelationSchema(name, [f"c{i}" for i in range(arity)])
        for name, arity in BASE_ARITIES.items()
    ])


@st.composite
def databases(draw, values=VALUES):
    db = Database(make_schema())
    for name, arity in BASE_ARITIES.items():
        rows = draw(
            st.lists(st.tuples(*[values] * arity), min_size=0, max_size=8)
        )
        db.insert_all(name, rows)
    return db


@st.composite
def queries(draw, relations=tuple(sorted(ARITIES)), values=VALUES,
            max_comparisons=3):
    atom_count = draw(st.integers(1, 3))
    atoms = []
    for __ in range(atom_count):
        relation = draw(st.sampled_from(relations))
        terms = [
            draw(
                st.one_of(
                    st.sampled_from(VARIABLES),
                    st.builds(Constant, values),
                )
            )
            for __ in range(ARITIES[relation])
        ]
        atoms.append(RelationalAtom(relation, terms))

    relational_vars = sorted(
        {v for atom in atoms for v in atom.variables()}
    )
    comparisons = []
    if relational_vars:
        for __ in range(draw(st.integers(0, max_comparisons))):
            left = draw(st.sampled_from(relational_vars))
            right = draw(
                st.one_of(
                    st.sampled_from(relational_vars),
                    st.builds(Constant, values),
                )
            )
            op = draw(st.sampled_from(list(ComparisonOp)))
            comparisons.append(ComparisonAtom(left, op, right))

    if relational_vars:
        head_size = draw(st.integers(1, min(3, len(relational_vars))))
        head = draw(
            st.lists(
                st.sampled_from(relational_vars),
                min_size=head_size,
                max_size=head_size,
            )
        )
    else:
        head = []
    return ConjunctiveQuery("Q", head, atoms, comparisons)


@st.composite
def virtual_relations(draw):
    return {
        name: draw(
            st.lists(st.tuples(*[VALUES] * arity), min_size=0, max_size=6)
        )
        for name, arity in VIRTUAL_ARITIES.items()
    }


@settings(max_examples=120, deadline=None)
@given(db=databases(), query=queries(relations=tuple(sorted(BASE_ARITIES))))
def test_serial_plans_verify(db, query):
    plan = plan_query(query, db)
    assert check_plan(plan, db) == []


@settings(max_examples=80, deadline=None)
@given(db=databases(), virtual=virtual_relations(), query=queries())
def test_virtual_relation_plans_verify(db, virtual, query):
    plan = plan_query(query, db, virtual)
    assert check_plan(plan, db) == []


@settings(max_examples=80, deadline=None)
@given(db=databases(), query=queries(relations=tuple(sorted(BASE_ARITIES))))
def test_cached_and_rebound_plans_verify(db, query):
    """Plans served from the α-equivalence cache (including rebinds of a
    cached canonical plan) satisfy every invariant the fresh plan does.
    ``verify="always"`` makes the planner raise on the spot."""
    planner = QueryPlanner(db, verify="always")
    first = planner.plan(query)
    second = planner.plan(query)
    assert check_plan(first, db) == []
    assert check_plan(second, db) == []


@settings(max_examples=60, deadline=None)
@given(
    db=databases(),
    query=queries(relations=tuple(sorted(BASE_ARITIES))),
    shards=st.integers(2, 4),
)
def test_sharded_database_plans_verify(db, query, shards):
    """Resharding changes shard_lookup_pairs/stats but never the plan
    contract: plans stay verifiable and ordinal-capable for seeding."""
    db.reshard(shards)
    plan = plan_query(query, db)
    assert check_plan(plan, db) == []


@settings(max_examples=60, deadline=None)
@given(
    db=databases(values=MIXED_VALUES),
    query=queries(relations=tuple(sorted(BASE_ARITIES)), values=MIXED_VALUES),
)
def test_mixed_type_and_nan_plans_verify(db, query):
    """NaN constants and mixed-type columns exercise the verifier's
    NaN-tolerant comparison accounting (NaN != NaN under value
    equality) and the degraded scan access paths."""
    plan = plan_query(query, db)
    assert check_plan(plan, db) == []


@settings(max_examples=60, deadline=None)
@given(
    db=databases(),
    disjuncts=st.lists(
        queries(relations=tuple(sorted(BASE_ARITIES))),
        min_size=1,
        max_size=3,
    ),
)
def test_union_plans_verify(db, disjuncts):
    arity = disjuncts[0].arity
    aligned = [q for q in disjuncts if q.arity == arity]
    union = UnionQuery(aligned)
    planner = QueryPlanner(db)
    for plan in union.plan(db, planner=planner):
        assert check_plan(plan, db) == []


@settings(max_examples=60, deadline=None)
@given(db=databases(), query=queries(relations=tuple(sorted(BASE_ARITIES))))
def test_verify_plan_is_identity_on_sound_plans(db, query):
    plan = plan_query(query, db)
    assert verify_plan(plan, db) is plan
