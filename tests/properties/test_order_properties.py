"""Property-based tests for the order relations of Section 3.4."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.citation.order import (
    FewestUncoveredOrder,
    FewestViewsOrder,
    LexicographicOrder,
    absorbing_sum,
    best_polynomials,
    normal_form,
    polynomial_leq,
)
from repro.citation.polynomial import monomial_from_tokens
from repro.citation.tokens import BaseRelationToken, ViewCitationToken
from repro.semiring.polynomial import ProvenancePolynomial

view_tokens = st.builds(
    ViewCitationToken,
    st.sampled_from(["V1", "V2", "V4", "V5"]),
    st.tuples(st.sampled_from(["11", "13", "gpcr"])),
)
base_tokens = st.builds(
    BaseRelationToken, st.sampled_from(["FC", "Person", "MetaData"])
)
citation_tokens = st.one_of(view_tokens, base_tokens)


@st.composite
def citation_monomials(draw):
    return monomial_from_tokens(
        draw(st.lists(citation_tokens, min_size=0, max_size=4))
    )


@st.composite
def citation_polynomials(draw):
    monomials = draw(st.lists(citation_monomials(), min_size=0,
                              max_size=4))
    return ProvenancePolynomial(dict.fromkeys(monomials, 1))


ORDERS = [
    FewestViewsOrder(),
    FewestUncoveredOrder(),
    LexicographicOrder([FewestUncoveredOrder(), FewestViewsOrder()]),
]
order_strategy = st.sampled_from(ORDERS)


class TestPreorderLaws:
    @given(order_strategy, citation_monomials())
    def test_reflexive(self, order, m):
        assert order.leq(m, m)

    @given(order_strategy, citation_monomials(), citation_monomials(),
           citation_monomials())
    @settings(max_examples=100)
    def test_transitive(self, order, a, b, c):
        if order.leq(a, b) and order.leq(b, c):
            assert order.leq(a, c)

    @given(order_strategy, citation_monomials(), citation_monomials())
    def test_strictly_less_asymmetric(self, order, a, b):
        if order.strictly_less(a, b):
            assert not order.strictly_less(b, a)


class TestNormalFormLaws:
    @given(order_strategy, citation_polynomials())
    def test_normal_form_is_subset(self, order, p):
        nf = normal_form(p, order)
        assert set(nf.monomials()) <= set(p.monomials())

    @given(order_strategy, citation_polynomials())
    def test_normal_form_idempotent(self, order, p):
        nf = normal_form(p, order)
        assert normal_form(nf, order) == nf

    @given(order_strategy, citation_polynomials())
    @settings(max_examples=100)
    def test_every_dropped_monomial_dominated(self, order, p):
        nf = normal_form(p, order)
        kept = nf.monomials()
        for monomial in p.monomials():
            if monomial not in kept:
                assert any(
                    order.strictly_less(monomial, other) for other in kept
                )

    @given(order_strategy, citation_polynomials())
    def test_normal_form_equivalent_under_polynomial_order(self, order, p):
        nf = normal_form(p, order)
        assert polynomial_leq(nf, p, order)
        assert polynomial_leq(p, nf, order)


class TestAbsorption:
    @given(order_strategy, citation_polynomials(), citation_polynomials())
    @settings(max_examples=100)
    def test_absorbing_sum_dominates_both(self, order, p, q):
        combined = absorbing_sum([p, q], order)
        assert polynomial_leq(p, combined, order)
        assert polynomial_leq(q, combined, order)

    @given(order_strategy, citation_polynomials())
    def test_absorbing_sum_with_zero(self, order, p):
        zero = ProvenancePolynomial.zero()
        assert absorbing_sum([p, zero], order) == normal_form(p, order)

    @given(order_strategy,
           st.lists(citation_polynomials(), min_size=1, max_size=4))
    @settings(max_examples=75)
    def test_best_polynomials_are_maximal(self, order, polys):
        kept = best_polynomials(polys, order)
        assert kept, "at least one polynomial must survive"
        for survivor in kept:
            dominated = any(
                other != survivor
                and polynomial_leq(survivor, other, order)
                and not polynomial_leq(other, survivor, order)
                for other in polys
            )
            assert not dominated

    @given(order_strategy,
           st.lists(citation_polynomials(), min_size=1, max_size=4))
    @settings(max_examples=75)
    def test_every_input_dominated_by_a_survivor(self, order, polys):
        kept = best_polynomials(polys, order)
        for polynomial in polys:
            assert any(
                polynomial_leq(polynomial, survivor, order)
                for survivor in kept
            )
