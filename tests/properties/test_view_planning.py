"""Property: planner-routed view & fixity evaluation ≡ the reference.

The differential harness for the remaining paper query classes:

- **Views** — :meth:`CitationView.instance` / ``citation_rows`` /
  ``citation_for`` and :meth:`ViewRegistry.materialize` with a shared
  :class:`~repro.cq.plan.QueryPlanner` must equal the seed-era direct
  ``evaluate_query`` path exactly (multiset and order), on sharded
  storage too, and across mutations that invalidate cached plans.
- **Fixity** — :class:`~repro.fixity.temporal.TemporalCitationEngine`
  snapshot-pinned evaluation must equal evaluating the tagged query
  against the temporal database without any planner, and (as sets)
  evaluating the untagged query against the original snapshot; new
  snapshot registrations between runs must never serve stale plans.
  :class:`~repro.fixity.versioned.VersionedCitationEngine` evaluation
  must equal direct evaluation against the reconstructed version.
"""

import warnings

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq.evaluation import evaluate_query
from repro.cq.parser import parse_query
from repro.cq.plan import QueryPlanner
from repro.fixity.temporal import TemporalCitationEngine, tag_query
from repro.fixity.versioned import (
    VersionedCitationEngine,
    VersionedDatabase,
)
from repro.relational.database import Database
from repro.relational.schema import RelationSchema, Schema
from repro.views.citation_view import CitationView
from repro.views.registry import ViewRegistry

ARITIES = {"R": 2, "S": 2, "T": 3}
VALUES = st.integers(min_value=0, max_value=4)
SHARD_COUNTS = [1, 2, 7]

QUERIES = [
    "Q(A, C) :- R(A, B), S(B, C)",
    "Q(A) :- R(A, B), T(B, A, C)",
    "Q(A, B) :- R(A, B), A < B",
]


def make_schema() -> Schema:
    return Schema([
        RelationSchema(name, [f"c{i}" for i in range(arity)])
        for name, arity in ARITIES.items()
    ])


def make_views() -> list[CitationView]:
    parameterized = CitationView.from_strings(
        view="lambda A. V(A, B) :- R(A, B)",
        citation_query="lambda A. CV(A, C) :- R(A, B), S(B, C)",
        labels=("ID", "Credit"),
    )
    plain = CitationView.from_strings(
        view="W(A, C) :- R(A, B), S(B, C)",
        citation_query="CW(A, B) :- T(A, B, C)",
        labels=("Key", "Val"),
    )
    return [parameterized, plain]


@st.composite
def databases(draw, shards: int = 1):
    db = Database(make_schema(), shards=shards)
    for name, arity in ARITIES.items():
        rows = draw(
            st.lists(st.tuples(*[VALUES] * arity), min_size=0, max_size=8)
        )
        db.insert_all(name, rows)
    return db


@st.composite
def row_batches(draw, relation: str):
    arity = ARITIES[relation]
    return draw(
        st.lists(st.tuples(*[VALUES] * arity), min_size=1, max_size=5)
    )


class TestViewPlanning:
    @given(db=databases())
    @settings(max_examples=50, deadline=None)
    def test_instance_and_citation_rows_planned_equal_reference(self, db):
        """Planner-routed view evaluation is byte-identical to the
        seed-era direct path, for the full extension and for every
        live λ-valuation."""
        planner = QueryPlanner(db)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for view in make_views():
                assert view.instance(db, planner=planner) == view.instance(db)
                assert (
                    view.citation_rows(db, planner=planner)
                    == view.citation_rows(db)
                )
                if view.is_parameterized:
                    positions = view.parameter_positions()
                    for row in view.instance(db):
                        params = [row[i] for i in positions]
                        assert view.instance(
                            db, params=params, planner=planner
                        ) == view.instance(db, params=params)
                        assert view.citation_for(
                            db, tuple(params), planner=planner
                        ) == view.citation_for(db, tuple(params))

    @given(db=databases(), shards=st.sampled_from(SHARD_COUNTS))
    @settings(max_examples=30, deadline=None)
    def test_materialize_planned_equals_reference_sharded(self, db, shards):
        """Registry materialization through a shared planner equals the
        unplanned path at any shard count, repeatedly (warm cache)."""
        registry = ViewRegistry(make_schema(), make_views())
        reference = registry.materialize(db)
        db.reshard(shards)
        planner = QueryPlanner(db)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            cold = registry.materialize(db, planner=planner)
            warm = registry.materialize(db, planner=planner)
        assert cold == reference
        assert warm == reference
        assert planner.hits > 0  # the warm pass reused every plan

    @given(db=databases(), rows=row_batches("R"))
    @settings(max_examples=40, deadline=None)
    def test_mutations_invalidate_view_plans(self, db, rows):
        """A warm planner never serves pre-mutation plans: post-insert
        and post-delete evaluations match the fresh reference."""
        view = make_views()[0]
        planner = QueryPlanner(db)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            view.instance(db, planner=planner)  # warm the cache
            db.insert_all("R", rows)
            assert view.instance(db, planner=planner) == view.instance(db)
            db.delete("R", *rows[0])
            assert view.instance(db, planner=planner) == view.instance(db)
            assert (
                view.citation_rows(db, planner=planner)
                == view.citation_rows(db)
            )


class TestTemporalPlanning:
    @given(first=databases(), second=databases())
    @settings(max_examples=30, deadline=None)
    def test_snapshot_pinned_evaluation_equals_reference(
        self, first, second
    ):
        """Tag-pinned planned evaluation equals the unplanned tagged
        query, and (as sets) direct evaluation of the snapshot."""
        engine = TemporalCitationEngine(
            make_schema(),
            snapshots=[("t1", first), ("t2", second)],
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for text in QUERIES:
                query = parse_query(text)
                for tag, snapshot in (("t1", first), ("t2", second)):
                    planned = engine.evaluate(query, tag)
                    reference = evaluate_query(
                        tag_query(query, tag), engine.db
                    )
                    assert planned == reference  # multiset AND order
                    assert set(planned) == set(
                        evaluate_query(query, snapshot)
                    )

    @given(first=databases(), second=databases())
    @settings(max_examples=25, deadline=None)
    def test_snapshot_registration_invalidates_plans(self, first, second):
        """Registering a snapshot between runs must not serve plans
        costed against the old statistics, and pinned results for old
        tags never change."""
        engine = TemporalCitationEngine(
            make_schema(), snapshots=[("t1", first)]
        )
        query = parse_query(QUERIES[0])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            before = engine.evaluate(query, "t1")
            engine.register_snapshot("t2", second)
            after = engine.evaluate(query, "t1")
            again = engine.evaluate(query, "t1")
            assert after == before == again
            assert set(engine.evaluate(query, "t2")) == set(
                evaluate_query(query, second)
            )

    def test_thread_and_process_parallel_equal_serial(self):
        """Parallel snapshot-pinned evaluation preserves the serial
        stream (one deterministic case; spawn cost bounds examples)."""
        snapshot = Database(make_schema())
        snapshot.insert_all("R", [(i % 5, (i + 1) % 5) for i in range(80)])
        snapshot.insert_all("S", [(i % 5, (i + 2) % 5) for i in range(50)])
        snapshot.insert_all(
            "T", [(i % 5, i % 3, i % 4) for i in range(30)]
        )
        engine = TemporalCitationEngine(
            make_schema(), snapshots=[("t1", snapshot)]
        )
        for text in QUERIES:
            serial = engine.evaluate(text, "t1")
            threads = engine.evaluate(text, "t1", parallelism=3)
            processes = engine.evaluate(
                text, "t1", parallelism=3, use_processes=True
            )
            assert threads == serial, text
            assert processes == serial, text


class TestVersionedPlanning:
    @given(
        initial=st.lists(
            st.tuples(VALUES, VALUES), min_size=0, max_size=8
        ),
        added=st.lists(
            st.tuples(VALUES, VALUES), min_size=1, max_size=5
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_version_pinned_evaluation_equals_reconstruction(
        self, initial, added
    ):
        """Per-version planned evaluation equals direct evaluation of
        the reconstructed state, for every committed version."""
        versioned = VersionedDatabase(make_schema())
        for values in initial:
            versioned.insert("R", *values)
        versioned.insert("S", 1, 2)
        v1 = versioned.commit("r1")
        for values in added:
            versioned.insert("R", *values)
        versioned.insert("S", 2, 3)
        v2 = versioned.commit("r2")
        engine = VersionedCitationEngine(
            versioned, ViewRegistry(make_schema())
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for version in (v1, v2, "r1", "r2", None):
                resolved = versioned.resolve(version)
                reference = evaluate_query(
                    parse_query(QUERIES[0]), versioned.as_of(resolved)
                )
                planned = engine.evaluate(QUERIES[0], version)
                warm = engine.evaluate(QUERIES[0], version)
                assert planned == reference
                assert warm == reference
