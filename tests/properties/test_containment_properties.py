"""Property-based tests: containment agrees with evaluation.

Soundness of the homomorphism test is checked *semantically*: whenever
``is_contained_in(Q1, Q2)`` holds, every random database must satisfy
``Q1(D) ⊆ Q2(D)``.  Random CQs over a tiny schema keep the search space
dense enough to exercise interesting homomorphisms.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq.atoms import ComparisonAtom, RelationalAtom
from repro.cq.containment import is_contained_in, normalize_query
from repro.cq.evaluation import evaluate_query
from repro.cq.minimization import minimize
from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Constant, Variable
from repro.relational.database import Database
from repro.relational.expressions import ComparisonOp
from repro.relational.schema import RelationSchema, Schema

SCHEMA = Schema([
    RelationSchema("R", ["a", "b"]),
    RelationSchema("S", ["a"]),
])

VARIABLES = [Variable(name) for name in "XYZW"]
VALUES = [0, 1, 2]


@st.composite
def queries(draw):
    atom_count = draw(st.integers(1, 3))
    atoms = []
    for __ in range(atom_count):
        relation = draw(st.sampled_from(["R", "S"]))
        arity = 2 if relation == "R" else 1
        terms = [
            draw(st.one_of(
                st.sampled_from(VARIABLES),
                st.sampled_from([Constant(v) for v in VALUES]),
            ))
            for __ in range(arity)
        ]
        atoms.append(RelationalAtom(relation, terms))
    variables = []
    for atom in atoms:
        for var in atom.variables():
            if var not in variables:
                variables.append(var)
    if not variables:
        atoms.append(RelationalAtom("S", [Variable("X")]))
        variables = [Variable("X")]
    head_size = draw(st.integers(1, min(2, len(variables))))
    head = variables[:head_size]
    comparisons = []
    if draw(st.booleans()) and variables:
        var = draw(st.sampled_from(variables))
        op = draw(st.sampled_from([ComparisonOp.EQ, ComparisonOp.NE,
                                   ComparisonOp.LE]))
        comparisons.append(
            ComparisonAtom(var, op,
                           Constant(draw(st.sampled_from(VALUES))))
        )
    return ConjunctiveQuery("Q", head, atoms, comparisons)


@st.composite
def databases(draw):
    db = Database(SCHEMA)
    for __ in range(draw(st.integers(0, 6))):
        db.relation("R").insert(
            (draw(st.sampled_from(VALUES)), draw(st.sampled_from(VALUES))),
            enforce_key=False,
        )
    for __ in range(draw(st.integers(0, 3))):
        db.relation("S").insert(
            (draw(st.sampled_from(VALUES)),), enforce_key=False
        )
    return db


class TestContainmentSoundness:
    @given(queries(), queries(), databases())
    @settings(max_examples=150, deadline=None)
    def test_containment_implies_subset(self, q1, q2, db):
        if len(q1.head) != len(q2.head):
            return
        if is_contained_in(q1, q2):
            result1 = set(evaluate_query(q1, db))
            result2 = set(evaluate_query(q2, db))
            assert result1 <= result2

    @given(queries(), databases())
    @settings(max_examples=100, deadline=None)
    def test_self_containment(self, q, db):
        assert is_contained_in(q, q)


class TestNormalizationSemantics:
    @given(queries(), databases())
    @settings(max_examples=150, deadline=None)
    def test_normalization_preserves_results(self, q, db):
        normalized, satisfiable = normalize_query(q)
        expected = set(evaluate_query(q, db))
        if not satisfiable:
            assert expected == set()
        else:
            assert set(evaluate_query(normalized, db)) == expected


class TestMinimizationSemantics:
    @given(queries(), databases())
    @settings(max_examples=100, deadline=None)
    def test_minimize_preserves_results(self, q, db):
        core = minimize(q)
        assert set(evaluate_query(core, db)) == set(evaluate_query(q, db))

    @given(queries())
    @settings(max_examples=100, deadline=None)
    def test_minimize_never_grows(self, q):
        assert len(minimize(q).atoms) <= len(q.atoms)
