"""Property-based tests (hypothesis) for the semiring substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semiring import BOOLEAN, COUNTING, TROPICAL, WHY
from repro.semiring.polynomial import ProvenanceMonomial, ProvenancePolynomial

tokens = st.sampled_from(["x", "y", "z", "w"])


@st.composite
def monomials(draw):
    return ProvenanceMonomial(
        draw(st.lists(tokens, min_size=0, max_size=4))
    )


@st.composite
def polynomials(draw):
    terms = draw(st.dictionaries(monomials(),
                                 st.integers(min_value=1, max_value=3),
                                 max_size=4))
    return ProvenancePolynomial(terms)


class TestPolynomialSemiringLaws:
    @given(polynomials(), polynomials())
    def test_add_commutative(self, p, q):
        assert p.add(q) == q.add(p)

    @given(polynomials(), polynomials(), polynomials())
    def test_add_associative(self, p, q, r):
        assert p.add(q).add(r) == p.add(q.add(r))

    @given(polynomials(), polynomials())
    def test_multiply_commutative(self, p, q):
        assert p.multiply(q) == q.multiply(p)

    @given(polynomials(), polynomials(), polynomials())
    @settings(max_examples=50)
    def test_multiply_associative(self, p, q, r):
        assert p.multiply(q).multiply(r) == p.multiply(q.multiply(r))

    @given(polynomials(), polynomials(), polynomials())
    @settings(max_examples=50)
    def test_distributivity(self, p, q, r):
        assert p.multiply(q.add(r)) == p.multiply(q).add(p.multiply(r))

    @given(polynomials())
    def test_identities(self, p):
        assert p.add(ProvenancePolynomial.zero()) == p
        assert p.multiply(ProvenancePolynomial.one()) == p
        assert p.multiply(ProvenancePolynomial.zero()).is_zero


class TestUniversality:
    """Specializing N[X] commutes with the semiring operations."""

    values = {"x": 2, "y": 0, "z": 3, "w": 1}

    @given(polynomials(), polynomials())
    @settings(max_examples=50)
    def test_add_commutes_with_counting(self, p, q):
        direct = p.add(q).specialize(COUNTING, self.values.__getitem__)
        split = COUNTING.add(
            p.specialize(COUNTING, self.values.__getitem__),
            q.specialize(COUNTING, self.values.__getitem__),
        )
        assert direct == split

    @given(polynomials(), polynomials())
    @settings(max_examples=50)
    def test_multiply_commutes_with_counting(self, p, q):
        direct = p.multiply(q).specialize(COUNTING, self.values.__getitem__)
        split = COUNTING.multiply(
            p.specialize(COUNTING, self.values.__getitem__),
            q.specialize(COUNTING, self.values.__getitem__),
        )
        assert direct == split

    @given(polynomials(), polynomials())
    @settings(max_examples=50)
    def test_add_commutes_with_boolean(self, p, q):
        bools = {"x": True, "y": False, "z": True, "w": False}
        direct = p.add(q).specialize(BOOLEAN, bools.__getitem__)
        split = BOOLEAN.add(
            p.specialize(BOOLEAN, bools.__getitem__),
            q.specialize(BOOLEAN, bools.__getitem__),
        )
        assert direct == split


class TestWhyProvenance:
    why_values = st.builds(
        lambda names: WHY.sum([WHY.token(n) for n in names]),
        st.lists(tokens, max_size=3),
    )

    @given(why_values, why_values)
    def test_add_idempotent_commutative(self, a, b):
        assert WHY.add(a, a) == a
        assert WHY.add(a, b) == WHY.add(b, a)

    @given(why_values, why_values, why_values)
    @settings(max_examples=50)
    def test_distributivity(self, a, b, c):
        assert WHY.multiply(a, WHY.add(b, c)) == WHY.add(
            WHY.multiply(a, b), WHY.multiply(a, c)
        )

    @given(why_values)
    def test_minimized_is_subset_with_same_minimal_witnesses(self, a):
        minimized = WHY.minimized(a)
        assert minimized <= a
        for witness in a:
            assert any(kept <= witness for kept in minimized)


class TestTropical:
    costs = st.floats(min_value=0, max_value=100, allow_nan=False)

    @given(costs, costs, costs)
    def test_min_plus_distributivity(self, a, b, c):
        left = TROPICAL.multiply(a, TROPICAL.add(b, c))
        right = TROPICAL.add(TROPICAL.multiply(a, b),
                             TROPICAL.multiply(a, c))
        assert left == right
