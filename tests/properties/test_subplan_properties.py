"""Property: cross-query sub-plan sharing never changes results.

Sharing a memoized prefix (:mod:`repro.cq.subplan`) must be invisible to
every consumer: the binding stream of a seeded execution equals the
plain executor's stream *exactly* — same multiset (what the citation
model counts, Def 3.2) and same order (what first-derivation grouping
and record ordering depend on) — serial and parallel, on cold and warm
memos, and after data mutations that invalidate the stored bindings.
The batch entry point (:meth:`CitationEngine.cite_batch`) must likewise
produce citation-identical results with sharing on and off.
"""

import warnings
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.citation.generator import CitationEngine
from repro.cq.atoms import ComparisonAtom, RelationalAtom
from repro.cq.evaluation import reference_bindings
from repro.cq.executor import execute_plan
from repro.cq.plan import QueryPlanner, prefix_keys
from repro.cq.query import ConjunctiveQuery
from repro.cq.subplan import SubplanMemo, execute_plan_shared
from repro.cq.terms import Constant, Variable
from repro.relational.database import Database
from repro.relational.expressions import ComparisonOp
from repro.relational.schema import RelationSchema, Schema
from repro.views.registry import ViewRegistry

ARITIES = {"R": 2, "S": 2, "T": 3}
VALUES = st.integers(min_value=0, max_value=4)
VARIABLES = [Variable(f"X{i}") for i in range(6)]


def make_schema() -> Schema:
    return Schema([
        RelationSchema(name, [f"c{i}" for i in range(arity)])
        for name, arity in ARITIES.items()
    ])


@st.composite
def databases(draw):
    db = Database(make_schema())
    for name, arity in ARITIES.items():
        rows = draw(
            st.lists(st.tuples(*[VALUES] * arity), min_size=0, max_size=8)
        )
        db.insert_all(name, rows)
    return db


@st.composite
def queries(draw):
    atom_count = draw(st.integers(1, 3))
    atoms = []
    for __ in range(atom_count):
        relation = draw(st.sampled_from(sorted(ARITIES)))
        terms = [
            draw(st.one_of(
                st.sampled_from(VARIABLES),
                st.builds(Constant, VALUES),
            ))
            for __ in range(ARITIES[relation])
        ]
        atoms.append(RelationalAtom(relation, terms))
    relational_vars = sorted({v for atom in atoms for v in atom.variables()})
    comparisons = []
    if relational_vars:
        for __ in range(draw(st.integers(0, 2))):
            left = draw(st.sampled_from(relational_vars))
            right = draw(st.one_of(
                st.sampled_from(relational_vars),
                st.builds(Constant, VALUES),
            ))
            op = draw(st.sampled_from(list(ComparisonOp)))
            comparisons.append(ComparisonAtom(left, op, right))
    if relational_vars:
        head_size = draw(st.integers(1, min(3, len(relational_vars))))
        head = draw(st.lists(
            st.sampled_from(relational_vars),
            min_size=head_size, max_size=head_size,
        ))
    else:
        head = []
    return ConjunctiveQuery("Q", head, atoms, comparisons)


def binding_key(binding):
    return tuple(sorted((var.name, value) for var, value in binding.items()))


def plain_sequence(plan, db):
    return [binding_key(b) for b in execute_plan(plan, db)]


def shared_sequence(plan, db, memo, **kwargs):
    return [
        binding_key(b)
        for b in execute_plan_shared(plan, db, memo=memo, **kwargs)
    ]


def memo_with_all_prefixes(plan):
    memo = SubplanMemo()
    if not plan.empty:
        for key in prefix_keys(plan)[0]:
            memo.reserve(key)
    return memo


@settings(max_examples=80, deadline=None)
@given(db=databases(), query=queries())
def test_shared_execution_equals_plain_exactly(db, query):
    """Storing (cold memo) and seeding (warm memo) both reproduce the
    plain executor's binding sequence exactly, and the multiset matches
    the reference evaluator."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        plan = QueryPlanner(db).plan(query)
        memo = memo_with_all_prefixes(plan)
        baseline = plain_sequence(plan, db)
        cold = shared_sequence(plan, db, memo)
        warm = shared_sequence(plan, db, memo)
        reference = Counter(
            binding_key(b) for b in reference_bindings(query, db)
        )
    assert cold == baseline
    assert warm == baseline
    assert Counter(baseline) == reference
    if plan.steps and not plan.empty:
        assert memo.hits >= 1


@settings(max_examples=60, deadline=None)
@given(db=databases(), query=queries())
def test_shared_parallel_equals_serial_exactly(db, query):
    """Seeded parallel execution preserves the serial order (contiguous
    shards merged in shard order), warm and cold."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        plan = QueryPlanner(db).plan(query)
        memo = memo_with_all_prefixes(plan)
        baseline = plain_sequence(plan, db)
        cold = shared_sequence(
            plan, db, memo, parallelism=3, min_partition=2
        )
        warm = shared_sequence(
            plan, db, memo, parallelism=3, min_partition=2
        )
    assert cold == baseline
    assert warm == baseline


@settings(max_examples=60, deadline=None)
@given(
    db=databases(),
    query=queries(),
    rows=st.lists(st.tuples(VALUES, VALUES), min_size=1, max_size=3),
)
def test_mutations_invalidate_memoized_prefixes(db, query, rows):
    """After inserts the memo must not serve stale bindings: a fresh
    plan's shared execution equals the reference on the mutated data."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        planner = QueryPlanner(db)
        plan = planner.plan(query)
        memo = memo_with_all_prefixes(plan)
        shared_sequence(plan, db, memo)  # populate the memo

        db.insert_all("R", rows)
        plan = planner.plan(query)  # replanned for the new statistics
        for key in prefix_keys(plan)[0]:
            memo.reserve(key)
        mutated = shared_sequence(plan, db, memo)
        again = shared_sequence(plan, db, memo)
        reference = Counter(
            binding_key(b) for b in reference_bindings(query, db)
        )
    assert Counter(mutated) == reference
    assert again == mutated
    assert mutated == plain_sequence(plan, db)


@settings(max_examples=25, deadline=None)
@given(
    db=databases(),
    batch=st.lists(queries(), min_size=2, max_size=4),
)
def test_cite_batch_shared_equals_unshared(db, batch):
    """The batch entry point: citation results are identical with
    sub-plan sharing on and off, in batch order."""
    registry = ViewRegistry(make_schema())
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        shared = CitationEngine(db, registry, share_subplans=True)
        unshared = CitationEngine(db, registry, share_subplans=False)
        shared_results = shared.cite_batch(batch)
        unshared_results = unshared.cite_batch(batch)
    assert unshared.subplan_memo.hits == 0
    for left, right in zip(shared_results, unshared_results):
        assert left.citation() == right.citation()
        assert list(left.tuples) == list(right.tuples)
        for output, tc in left.tuples.items():
            assert tc.polynomial == right.tuples[output].polynomial
