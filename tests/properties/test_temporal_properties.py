"""Property tests for the λ-timestamp lifting (Section 4 sketch).

Core invariant: reading a lifted view at tag ``t`` returns exactly the
original view's rows over snapshot ``t`` (with the tag appended) — the
lifting is a faithful embedding of per-version semantics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq.evaluation import evaluate_query
from repro.fixity.temporal import lift_database, lift_registry, tag_query
from repro.gtopdb.generator import GtopdbGenerator
from repro.gtopdb.views import paper_registry

REGISTRY = paper_registry()
LIFTED = lift_registry(REGISTRY)

QUERY_TEXTS = [
    "Q(N) :- Family(F, N, Ty)",
    'Q(N) :- Family(F, N, Ty), Ty = "gpcr"',
    "Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)",
]


@st.composite
def snapshot_pairs(draw):
    seed_a = draw(st.integers(0, 50))
    seed_b = draw(st.integers(51, 100))
    make = lambda seed: GtopdbGenerator(
        families=draw(st.integers(3, 10)), persons=6, types=3, seed=seed,
    ).build()
    return [("tagA", make(seed_a)), ("tagB", make(seed_b))]


class TestLiftingFaithful:
    @given(snapshot_pairs())
    @settings(max_examples=10, deadline=None)
    def test_lifted_view_instance_matches_snapshot(self, snapshots):
        temporal = lift_database(snapshots)
        for tag, snapshot in snapshots:
            for view in REGISTRY:
                lifted = LIFTED.get(view.name)
                original_rows = set(view.instance(snapshot))
                # Lifted instance at this tag, with the tag stripped.
                lifted_rows = {
                    row[:-1]
                    for row in lifted.instance(temporal)
                    if row[-1] == tag
                }
                assert lifted_rows == original_rows, (tag, view.name)

    @given(snapshot_pairs(), st.sampled_from(QUERY_TEXTS))
    @settings(max_examples=10, deadline=None)
    def test_tagged_query_reads_one_snapshot(self, snapshots, text):
        from repro.cq.parser import parse_query
        temporal = lift_database(snapshots)
        for tag, snapshot in snapshots:
            tagged = tag_query(parse_query(text), tag)
            assert set(evaluate_query(tagged, temporal)) == \
                set(evaluate_query(parse_query(text), snapshot))

    @given(snapshot_pairs())
    @settings(max_examples=8, deadline=None)
    def test_lifted_citation_queries_version_consistent(self, snapshots):
        temporal = lift_database(snapshots)
        for tag, snapshot in snapshots:
            v1 = REGISTRY.get("V1")
            lifted_v1 = LIFTED.get("V1")
            for row in snapshot.relation("Family"):
                original = v1.citation_for(snapshot, (row[0],))
                lifted = lifted_v1.citation_for(temporal, (row[0], tag))
                stripped = {k: v for k, v in lifted.items() if k != "VTag"}
                assert stripped == original
