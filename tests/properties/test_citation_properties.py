"""Property-based tests for the end-to-end citation pipeline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.citation.cache import canonical_key
from repro.citation.generator import CitationEngine
from repro.citation.policy import comprehensive_policy, focused_policy
from repro.cq.evaluation import evaluate_query
from repro.cq.parser import parse_query
from repro.cq.terms import Variable
from repro.cq.ucq import UnionQuery
from repro.gtopdb.generator import GtopdbGenerator
from repro.gtopdb.views import paper_registry

REGISTRY = paper_registry()

QUERY_TEXTS = [
    "Q(N) :- Family(F, N, Ty)",
    'Q(N) :- Family(F, N, Ty), Ty = "gpcr"',
    "Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)",
    'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"',
    "Q(N, Pn) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A)",
]


@st.composite
def small_databases(draw):
    seed = draw(st.integers(0, 500))
    return GtopdbGenerator(families=draw(st.integers(3, 12)), persons=8,
                           types=3, seed=seed).build()


class TestPipelineInvariants:
    @given(st.sampled_from(QUERY_TEXTS), small_databases())
    @settings(max_examples=25, deadline=None)
    def test_outputs_match_evaluation(self, text, db):
        query = parse_query(text)
        engine = CitationEngine(db, REGISTRY,
                                policy=comprehensive_policy())
        result = engine.cite(query)
        assert set(result.output_tuples) == set(evaluate_query(query, db))

    @given(st.sampled_from(QUERY_TEXTS), small_databases())
    @settings(max_examples=25, deadline=None)
    def test_every_tuple_has_nonzero_citation(self, text, db):
        engine = CitationEngine(db, REGISTRY,
                                policy=comprehensive_policy())
        result = engine.cite(text)
        for tc in result.tuples.values():
            assert not tc.polynomial.is_zero

    @given(st.sampled_from(QUERY_TEXTS), small_databases())
    @settings(max_examples=20, deadline=None)
    def test_focused_monomials_subset_of_comprehensive(self, text, db):
        comprehensive = CitationEngine(
            db, REGISTRY, policy=comprehensive_policy()
        ).cite(text)
        focused = CitationEngine(
            db, REGISTRY, policy=focused_policy(REGISTRY)
        ).cite(text)
        assert set(focused.tuples) == set(comprehensive.tuples)
        for output in focused.tuples:
            focused_monomials = set(
                focused.tuples[output].polynomial.monomials()
            )
            comprehensive_monomials = set(
                comprehensive.tuples[output].polynomial.monomials()
            )
            assert focused_monomials <= comprehensive_monomials

    @given(small_databases())
    @settings(max_examples=15, deadline=None)
    def test_plan_independence_under_atom_permutation(self, db):
        engine = CitationEngine(db, REGISTRY,
                                policy=comprehensive_policy())
        forward = engine.cite(
            'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), '
            'Ty = "gpcr"'
        )
        backward = engine.cite(
            'Q(N, Tx) :- FamilyIntro(F, Tx), Ty = "gpcr", '
            'Family(F, N, Ty)'
        )
        assert set(forward.tuples) == set(backward.tuples)
        for output in forward.tuples:
            assert forward.tuples[output].polynomial == \
                backward.tuples[output].polynomial


class TestUnionProperties:
    @given(st.lists(st.sampled_from(QUERY_TEXTS[:4]), min_size=1,
                    max_size=3), small_databases())
    @settings(max_examples=20, deadline=None)
    def test_union_evaluation_is_union_of_disjuncts(self, texts, db):
        disjuncts = [parse_query(t) for t in texts]
        arities = {len(q.head) for q in disjuncts}
        if len(arities) != 1:
            return
        union = UnionQuery(disjuncts)
        expected = set()
        for disjunct in disjuncts:
            expected.update(evaluate_query(disjunct, db))
        assert set(union.evaluate(db)) == expected

    @given(st.lists(st.sampled_from(QUERY_TEXTS[:2]), min_size=1,
                    max_size=3), small_databases())
    @settings(max_examples=15, deadline=None)
    def test_cite_union_outputs_match_union_evaluation(self, texts, db):
        disjuncts = [parse_query(t) for t in texts]
        union = UnionQuery(disjuncts)
        engine = CitationEngine(db, REGISTRY,
                                policy=comprehensive_policy())
        result = engine.cite_union(union)
        assert set(result.tuples) == set(union.evaluate(db))

    @given(st.sampled_from(QUERY_TEXTS[:4]), small_databases())
    @settings(max_examples=15, deadline=None)
    def test_minimized_union_equivalent(self, text, db):
        union = UnionQuery([parse_query(text), parse_query(text)])
        minimized = union.minimized()
        assert set(minimized.evaluate(db)) == set(union.evaluate(db))


class TestCacheKeyProperties:
    variable_pool = ["A", "B", "C", "D", "E", "G", "H", "K"]

    @given(st.sampled_from(QUERY_TEXTS), st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_alpha_invariance(self, text, rng):
        query = parse_query(text)
        names = [v.name for v in query.variables()]
        fresh = list(self.variable_pool)
        rng.shuffle(fresh)
        renaming = {
            Variable(old): Variable(new)
            for old, new in zip(names, fresh)
        }
        renamed = query.substitute(renaming)
        assert canonical_key(query) == canonical_key(renamed)

    def test_distinct_structures_distinct_keys(self):
        keys = {canonical_key(parse_query(t)) for t in QUERY_TEXTS}
        assert len(keys) == len(QUERY_TEXTS)
