"""Property: the planned executor is binding-for-binding equivalent to
the reference evaluator.

The refactor split evaluation into statistics → plan → execute
(:mod:`repro.cq.plan` / :mod:`repro.cq.executor`); the pre-planner greedy
interpreter survives as :func:`repro.cq.evaluation.reference_bindings`.
Cost-based join ordering may enumerate bindings in a different *order*,
but the *multiset* of bindings — which is what the citation model counts
(Def 3.2 sums one monomial per binding) — must be identical on every
query, database, and virtual-relation combination.
"""

import warnings
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq.atoms import ComparisonAtom, RelationalAtom
from repro.cq.evaluation import (
    enumerate_bindings,
    evaluate_query,
    reference_bindings,
)
from repro.cq.executor import execute_plan
from repro.cq.parallel import execute_plan_parallel
from repro.cq.plan import QueryPlanner, plan_query
from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Constant, Variable
from repro.relational.database import Database
from repro.relational.expressions import ComparisonOp
from repro.relational.schema import RelationSchema, Schema

BASE_ARITIES = {"R": 2, "S": 2, "T": 3}
VIRTUAL_ARITIES = {"VR": 2}
ARITIES = {**BASE_ARITIES, **VIRTUAL_ARITIES}

VALUES = st.integers(min_value=0, max_value=4)
VARIABLES = [Variable(f"X{i}") for i in range(6)]


def make_schema() -> Schema:
    return Schema([
        RelationSchema(name, [f"c{i}" for i in range(arity)])
        for name, arity in BASE_ARITIES.items()
    ])


@st.composite
def databases(draw):
    db = Database(make_schema())
    for name, arity in BASE_ARITIES.items():
        rows = draw(
            st.lists(
                st.tuples(*[VALUES] * arity), min_size=0, max_size=8
            )
        )
        db.insert_all(name, rows)
    return db


@st.composite
def virtual_relations(draw):
    return {
        name: draw(
            st.lists(st.tuples(*[VALUES] * arity), min_size=0, max_size=6)
        )
        for name, arity in VIRTUAL_ARITIES.items()
    }


@st.composite
def queries(draw, relations=tuple(sorted(ARITIES))):
    atom_count = draw(st.integers(1, 3))
    atoms = []
    for __ in range(atom_count):
        relation = draw(st.sampled_from(relations))
        terms = [
            draw(
                st.one_of(
                    st.sampled_from(VARIABLES),
                    st.builds(Constant, VALUES),
                )
            )
            for __ in range(ARITIES[relation])
        ]
        atoms.append(RelationalAtom(relation, terms))

    relational_vars = sorted(
        {v for atom in atoms for v in atom.variables()}
    )
    comparisons = []
    if relational_vars:
        for __ in range(draw(st.integers(0, 2))):
            left = draw(st.sampled_from(relational_vars))
            right = draw(
                st.one_of(
                    st.sampled_from(relational_vars),
                    st.builds(Constant, VALUES),
                )
            )
            op = draw(st.sampled_from(list(ComparisonOp)))
            comparisons.append(ComparisonAtom(left, op, right))

    if relational_vars:
        head_size = draw(st.integers(1, min(3, len(relational_vars))))
        head = draw(
            st.lists(
                st.sampled_from(relational_vars),
                min_size=head_size,
                max_size=head_size,
            )
        )
    else:
        head = []
    return ConjunctiveQuery("Q", head, atoms, comparisons)


def binding_key(binding):
    return tuple(sorted((var.name, value) for var, value in binding.items()))


@settings(max_examples=120, deadline=None)
@given(db=databases(), virtual=virtual_relations(), query=queries())
def test_planned_bindings_equal_reference_multiset(db, virtual, query):
    planned = Counter(
        binding_key(b) for b in enumerate_bindings(query, db, virtual)
    )
    reference = Counter(
        binding_key(b) for b in reference_bindings(query, db, virtual)
    )
    assert planned == reference


@settings(max_examples=60, deadline=None)
@given(db=databases(), query=queries(relations=tuple(sorted(BASE_ARITIES))))
def test_planned_bindings_equal_reference_without_virtual(db, query):
    planned = Counter(binding_key(b) for b in enumerate_bindings(query, db))
    reference = Counter(binding_key(b) for b in reference_bindings(query, db))
    assert planned == reference


@settings(max_examples=60, deadline=None)
@given(db=databases(), virtual=virtual_relations(), query=queries())
def test_cached_plans_do_not_change_results(db, virtual, query):
    """Going through the α-equivalence plan cache (including the rebind of
    a cached canonical plan) never changes the binding multiset."""
    planner = QueryPlanner(db)
    first = Counter(
        binding_key(b)
        for b in enumerate_bindings(query, db, virtual, planner=planner)
    )
    second = Counter(
        binding_key(b)
        for b in enumerate_bindings(query, db, virtual, planner=planner)
    )
    reference = Counter(
        binding_key(b) for b in reference_bindings(query, db, virtual)
    )
    assert first == second == reference
    assert planner.hits >= 1


@settings(max_examples=80, deadline=None)
@given(
    db=databases(),
    query=queries(relations=tuple(sorted(BASE_ARITIES))),
    data=st.data(),
)
def test_pushdown_equality_chains_preserve_multiset(db, query, data):
    """Extra ``=`` chains (X = Y, Y = c, contradictions, transitive
    constants) are exactly what comparison pushdown folds into access
    paths; the binding multiset must never change."""
    variables = sorted(query.relational_variables())
    comparisons = list(query.comparisons)
    for __ in range(data.draw(st.integers(1, 3)) if variables else 0):
        left = data.draw(st.sampled_from(variables))
        right = data.draw(
            st.one_of(
                st.sampled_from(variables),
                st.builds(Constant, VALUES),
            )
        )
        comparisons.append(ComparisonAtom(left, ComparisonOp.EQ, right))
    chained = ConjunctiveQuery(query.name, query.head, query.atoms,
                               comparisons)
    planned = Counter(
        binding_key(b) for b in enumerate_bindings(chained, db)
    )
    reference = Counter(
        binding_key(b) for b in reference_bindings(chained, db)
    )
    assert planned == reference


@settings(max_examples=60, deadline=None)
@given(
    db=databases(),
    virtual=virtual_relations(),
    query=queries(),
    parallelism=st.integers(2, 4),
)
def test_parallel_executor_equals_reference_multiset(
    db, virtual, query, parallelism
):
    """The shard-and-merge executor produces the reference evaluator's
    binding multiset at any worker count (Def 3.2 counts bindings, so
    the multiset — not just the set — must survive sharding)."""
    plan = plan_query(query, db, virtual)
    parallel = Counter(
        binding_key(b)
        for b in execute_plan_parallel(
            plan, db, virtual, parallelism=parallelism, min_partition=1
        )
    )
    reference = Counter(
        binding_key(b) for b in reference_bindings(query, db, virtual)
    )
    assert parallel == reference


@settings(max_examples=40, deadline=None)
@given(db=databases(), virtual=virtual_relations(), query=queries())
def test_parallel_executor_preserves_serial_order(db, virtual, query):
    """Contiguous shards merged in shard order reproduce the serial
    binding sequence exactly, not just its multiset."""
    plan = plan_query(query, db, virtual)
    parallel = [
        binding_key(b)
        for b in execute_plan_parallel(
            plan, db, virtual, parallelism=3, min_partition=1
        )
    ]
    serial = [binding_key(b) for b in execute_plan(plan, db, virtual)]
    assert parallel == serial


# ---------------------------------------------------------------------------
# Range pushdown (ordered access paths)
# ---------------------------------------------------------------------------

RANGE_OPS = [
    ComparisonOp.LT,
    ComparisonOp.LE,
    ComparisonOp.GT,
    ComparisonOp.GE,
]

#: Values that stress the ordered path: NaN (excluded from sorted
#: indexes, never satisfies a range), strings (mixed-type columns
#: degrade to scan + residual re-check), and a narrow integer band
#: (so random intervals are frequently empty or selective).
MIXED_VALUES = st.one_of(
    st.integers(min_value=0, max_value=4),
    st.sampled_from(["a", "b"]),
    st.just(float("nan")),
)


@st.composite
def mixed_databases(draw):
    db = Database(make_schema())
    for name, arity in BASE_ARITIES.items():
        rows = draw(
            st.lists(
                st.tuples(*[MIXED_VALUES] * arity), min_size=0, max_size=8
            )
        )
        db.insert_all(name, rows)
    return db


def _with_range_chain(query, data, values=VALUES):
    """Append 1-3 random var-vs-const range comparisons to ``query``."""
    variables = sorted(query.relational_variables())
    comparisons = list(query.comparisons)
    if variables:
        for __ in range(data.draw(st.integers(1, 3))):
            left = data.draw(st.sampled_from(variables))
            op = data.draw(st.sampled_from(RANGE_OPS))
            comparisons.append(
                ComparisonAtom(left, op, Constant(data.draw(values)))
            )
    return ConjunctiveQuery(query.name, query.head, query.atoms, comparisons)


@settings(max_examples=100, deadline=None)
@given(
    db=databases(),
    query=queries(relations=tuple(sorted(BASE_ARITIES))),
    data=st.data(),
)
def test_pushdown_range_chains_preserve_multiset(db, query, data):
    """Random `<`/`<=`/`>`/`>=` chains — merged intervals, empty
    intervals, ranges interacting with equality chains — never change
    the binding multiset vs the reference evaluator."""
    chained = _with_range_chain(query, data)
    planned = Counter(
        binding_key(b) for b in enumerate_bindings(chained, db)
    )
    reference = Counter(
        binding_key(b) for b in reference_bindings(chained, db)
    )
    assert planned == reference


@settings(max_examples=100, deadline=None)
@given(db=mixed_databases(), query=queries(relations=tuple(sorted(BASE_ARITIES))),
       data=st.data())
def test_range_pushdown_on_nan_and_mixed_type_data(db, query, data):
    """Mixed-type columns and NaN values degrade to scan + residual
    re-check (warning, never a raised TypeError from bisect), with the
    reference multiset preserved."""
    chained = _with_range_chain(
        query,
        data,
        values=st.one_of(
            st.integers(min_value=0, max_value=4), st.sampled_from(["a", "b"])
        ),
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        planned = Counter(
            binding_key(b) for b in enumerate_bindings(chained, db)
        )
        reference = Counter(
            binding_key(b) for b in reference_bindings(chained, db)
        )
    assert planned == reference


# ---------------------------------------------------------------------------
# Composite pushdown (hash probe + in-bucket bisect)
# ---------------------------------------------------------------------------


def _with_equality_and_range_chain(query, data, values=VALUES):
    """Append var=const equalities *and* range comparisons, the mix that
    drives steps onto composite access paths."""
    variables = sorted(query.relational_variables())
    comparisons = list(query.comparisons)
    if variables:
        for __ in range(data.draw(st.integers(1, 2))):
            comparisons.append(
                ComparisonAtom(
                    data.draw(st.sampled_from(variables)),
                    ComparisonOp.EQ,
                    Constant(data.draw(values)),
                )
            )
        for __ in range(data.draw(st.integers(1, 2))):
            comparisons.append(
                ComparisonAtom(
                    data.draw(st.sampled_from(variables)),
                    data.draw(st.sampled_from(RANGE_OPS)),
                    Constant(data.draw(values)),
                )
            )
    return ConjunctiveQuery(query.name, query.head, query.atoms, comparisons)


@settings(max_examples=100, deadline=None)
@given(
    db=databases(),
    query=queries(relations=tuple(sorted(BASE_ARITIES))),
    data=st.data(),
)
def test_pushdown_composite_chains_preserve_multiset(db, query, data):
    """Random equality + range mixes — the shapes that plan to composite
    access paths (hash probe + in-bucket bisect), plus every degenerate
    combination around them — never change the binding multiset vs the
    reference evaluator."""
    chained = _with_equality_and_range_chain(query, data)
    planned = Counter(
        binding_key(b) for b in enumerate_bindings(chained, db)
    )
    reference = Counter(
        binding_key(b) for b in reference_bindings(chained, db)
    )
    assert planned == reference


@settings(max_examples=80, deadline=None)
@given(db=mixed_databases(), query=queries(relations=tuple(sorted(BASE_ARITIES))),
       data=st.data())
def test_composite_pushdown_on_nan_and_mixed_type_data(db, query, data):
    """Mixed-type buckets degrade to hash probe + residual re-check and
    NaN rows are excluded from composite buckets (the residual filter
    rejects them either way); the reference multiset is preserved."""
    chained = _with_equality_and_range_chain(
        query,
        data,
        values=st.one_of(
            st.integers(min_value=0, max_value=4), st.sampled_from(["a", "b"])
        ),
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        planned = Counter(
            binding_key(b) for b in enumerate_bindings(chained, db)
        )
        reference = Counter(
            binding_key(b) for b in reference_bindings(chained, db)
        )
    assert planned == reference


@settings(max_examples=60, deadline=None)
@given(
    db=databases(),
    query=queries(relations=tuple(sorted(BASE_ARITIES))),
    parallelism=st.integers(2, 4),
    data=st.data(),
)
def test_parallel_equals_serial_order_for_composite_pushed_queries(
    db, query, parallelism, data
):
    """Composite-pushed plans shard and merge like any other: the
    parallel binding sequence equals the serial one exactly, and matches
    the reference multiset."""
    chained = _with_equality_and_range_chain(query, data)
    plan = plan_query(chained, db)
    parallel = [
        binding_key(b)
        for b in execute_plan_parallel(
            plan, db, parallelism=parallelism, min_partition=1
        )
    ]
    serial = [binding_key(b) for b in execute_plan(plan, db)]
    assert parallel == serial
    assert Counter(parallel) == Counter(
        binding_key(b) for b in reference_bindings(chained, db)
    )


@settings(max_examples=60, deadline=None)
@given(db=databases(), query=queries(relations=tuple(sorted(BASE_ARITIES))),
       data=st.data())
def test_empty_interval_short_circuit_matches_reference(db, query, data):
    """Contradictory bounds (lo > hi) prove emptiness at plan time; the
    short-circuited plan must agree with the reference evaluator."""
    variables = sorted(query.relational_variables())
    if not variables:
        return
    var = data.draw(st.sampled_from(variables))
    bound = data.draw(VALUES)
    comparisons = list(query.comparisons) + [
        ComparisonAtom(var, ComparisonOp.GT, Constant(bound)),
        ComparisonAtom(var, ComparisonOp.LT, Constant(bound)),
    ]
    contradictory = ConjunctiveQuery(
        query.name, query.head, query.atoms, comparisons
    )
    plan = plan_query(contradictory, db)
    assert plan.empty
    assert list(enumerate_bindings(contradictory, db)) == []
    assert list(reference_bindings(contradictory, db)) == []


@settings(max_examples=60, deadline=None)
@given(
    db=databases(),
    query=queries(relations=tuple(sorted(BASE_ARITIES))),
    parallelism=st.integers(2, 4),
    data=st.data(),
)
def test_parallel_equals_serial_order_for_range_pushed_queries(
    db, query, parallelism, data
):
    """Range-pushed plans shard and merge like any other: the parallel
    binding sequence equals the serial one exactly (same order, not just
    multiset), and matches the reference multiset."""
    chained = _with_range_chain(query, data)
    plan = plan_query(chained, db)
    parallel = [
        binding_key(b)
        for b in execute_plan_parallel(
            plan, db, parallelism=parallelism, min_partition=1
        )
    ]
    serial = [binding_key(b) for b in execute_plan(plan, db)]
    assert parallel == serial
    assert Counter(parallel) == Counter(
        binding_key(b) for b in reference_bindings(chained, db)
    )


@settings(max_examples=40, deadline=None)
@given(db=mixed_databases(), query=queries(relations=tuple(sorted(BASE_ARITIES))),
       data=st.data())
def test_parallel_order_survives_mixed_type_fallback(db, query, data):
    chained = _with_range_chain(query, data)
    plan = plan_query(chained, db)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        parallel = [
            binding_key(b)
            for b in execute_plan_parallel(
                plan, db, parallelism=3, min_partition=1
            )
        ]
        serial = [binding_key(b) for b in execute_plan(plan, db)]
    assert parallel == serial


@settings(max_examples=60, deadline=None)
@given(db=databases(), query=queries(relations=tuple(sorted(BASE_ARITIES))))
def test_evaluate_query_same_tuple_set(db, query):
    """Set-semantics results agree (order may differ with join order)."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        planned = set(evaluate_query(query, db))
    reference_tuples = set()
    for binding in reference_bindings(query, db):
        reference_tuples.add(
            tuple(
                term.value if isinstance(term, Constant) else binding[term]
                for term in query.head
            )
        )
    assert planned == reference_tuples
