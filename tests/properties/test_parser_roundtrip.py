"""Property-based parser round-trips: repr(parse(q)) reparses to q."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq.atoms import ComparisonAtom, RelationalAtom
from repro.cq.parser import parse_query
from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Constant, Variable
from repro.relational.expressions import ComparisonOp

variables = st.sampled_from([Variable(n) for n in ("X", "Y", "Z", "W")])
constants = st.one_of(
    st.integers(-5, 5).map(Constant),
    st.sampled_from(["gpcr", "a b", "it's"]).map(Constant),
    st.booleans().map(Constant),
)


@st.composite
def safe_queries(draw):
    atom_count = draw(st.integers(1, 3))
    atoms = []
    used_variables: list[Variable] = []
    for index in range(atom_count):
        relation = draw(st.sampled_from(["R", "S", "Rel_3"]))
        arity = draw(st.integers(1, 3))
        terms = []
        for __ in range(arity):
            term = draw(st.one_of(variables, constants))
            terms.append(term)
            if isinstance(term, Variable) and term not in used_variables:
                used_variables.append(term)
        atoms.append(RelationalAtom(relation, terms))
    if not used_variables:
        atoms.append(RelationalAtom("S", [Variable("X")]))
        used_variables.append(Variable("X"))
    head = draw(st.lists(st.sampled_from(used_variables), min_size=1,
                         max_size=2, unique=True))
    comparisons = []
    if draw(st.booleans()):
        comparisons.append(ComparisonAtom(
            draw(st.sampled_from(used_variables)),
            draw(st.sampled_from(list(ComparisonOp))),
            draw(st.one_of(constants, st.sampled_from(used_variables))),
        ))
    parameters = []
    if draw(st.booleans()):
        parameters = [used_variables[0]]
    return ConjunctiveQuery("Q", head, atoms, comparisons, parameters)


class TestRoundTrip:
    @given(safe_queries())
    @settings(max_examples=200, deadline=None)
    def test_repr_reparses_to_equal_query(self, query):
        text = repr(query)
        # Skip queries whose string constants contain quote characters the
        # grammar cannot express (repr uses double quotes).
        if any('"' in str(c.value) for c in query.constants()
               if isinstance(c.value, str)):
            return
        reparsed = parse_query(text)
        assert reparsed == query

    @given(safe_queries())
    @settings(max_examples=100, deadline=None)
    def test_signature_stable_under_roundtrip(self, query):
        if any('"' in str(c.value) for c in query.constants()
               if isinstance(c.value, str)):
            return
        assert parse_query(repr(query)).signature() == query.signature()
