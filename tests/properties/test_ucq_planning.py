"""Property: planner-routed UCQ evaluation ≡ the seed reference path.

The differential harness for the union query class: evaluating a
:class:`~repro.cq.ucq.UnionQuery` through the cost-based pipeline — a
shared :class:`~repro.cq.plan.QueryPlanner`, cross-disjunct prefix
reservation in the :class:`~repro.cq.subplan.SubplanMemo`, thread or
process pools, sharded storage — must reproduce the seed-era
per-disjunct evaluation *exactly*: same rows, same multiset, same
first-derivation order.  The greedy reference evaluator
(:func:`~repro.cq.evaluation.reference_bindings`) pins the set
semantics independently of any planner choice, and mutation sequences
between runs exercise the ``stats_version`` invalidation path.
"""

import warnings
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq.atoms import ComparisonAtom, RelationalAtom
from repro.cq.evaluation import (
    evaluate_query,
    head_tuple,
    reference_bindings,
)
from repro.cq.plan import QueryPlanner
from repro.cq.query import ConjunctiveQuery
from repro.cq.subplan import SubplanMemo
from repro.cq.terms import Constant, Variable
from repro.cq.ucq import UnionQuery
from repro.relational.database import Database
from repro.relational.expressions import ComparisonOp
from repro.relational.schema import RelationSchema, Schema
from repro.relational.tuples import Row

ARITIES = {"R": 2, "S": 2, "T": 3}
VALUES = st.integers(min_value=0, max_value=4)
VARIABLES = [Variable(f"X{i}") for i in range(6)]
SHARD_COUNTS = [1, 2, 7]


def make_schema() -> Schema:
    return Schema([
        RelationSchema(name, [f"c{i}" for i in range(arity)])
        for name, arity in ARITIES.items()
    ])


@st.composite
def databases(draw, shards: int = 1):
    db = Database(make_schema(), shards=shards)
    for name, arity in ARITIES.items():
        rows = draw(
            st.lists(st.tuples(*[VALUES] * arity), min_size=0, max_size=8)
        )
        db.insert_all(name, rows)
    return db


@st.composite
def disjuncts(draw, head_arity: int):
    """One safe conjunctive disjunct with a fixed head arity."""
    atom_count = draw(st.integers(1, 3))
    atoms = []
    for index in range(atom_count):
        relation = draw(st.sampled_from(sorted(ARITIES)))
        terms = []
        for position in range(ARITIES[relation]):
            if index == 0 and position == 0:
                # Guarantee at least one variable so a head exists.
                terms.append(draw(st.sampled_from(VARIABLES)))
            else:
                terms.append(draw(st.one_of(
                    st.sampled_from(VARIABLES),
                    st.builds(Constant, VALUES),
                )))
        atoms.append(RelationalAtom(relation, terms))
    relational_vars = sorted({v for atom in atoms for v in atom.variables()})
    comparisons = []
    for __ in range(draw(st.integers(0, 2))):
        left = draw(st.sampled_from(relational_vars))
        right = draw(st.one_of(
            st.sampled_from(relational_vars),
            st.builds(Constant, VALUES),
        ))
        op = draw(st.sampled_from(list(ComparisonOp)))
        comparisons.append(ComparisonAtom(left, op, right))
    head = draw(st.lists(
        st.sampled_from(relational_vars),
        min_size=head_arity, max_size=head_arity,
    ))
    return ConjunctiveQuery("Q", head, atoms, comparisons)


@st.composite
def unions(draw):
    head_arity = draw(st.integers(1, 2))
    count = draw(st.integers(2, 3))
    return UnionQuery([
        draw(disjuncts(head_arity)) for __ in range(count)
    ])


@st.composite
def mutation_sequences(draw):
    """A random program of insert / delete / bulk-load mutations."""
    ops = []
    live: list[tuple[str, tuple[int, ...]]] = []
    for __ in range(draw(st.integers(1, 6))):
        kind = draw(st.sampled_from(["insert", "bulk", "delete"]))
        relation = draw(st.sampled_from(sorted(ARITIES)))
        arity = ARITIES[relation]
        if kind == "insert":
            values = tuple(
                draw(st.integers(0, 4)) for __ in range(arity)
            )
            ops.append(("insert", relation, values))
            live.append((relation, values))
        elif kind == "bulk":
            base = draw(st.integers(0, 4))
            size = draw(st.integers(1, 10))
            rows = [
                tuple((base + i + p) % 5 for p in range(arity))
                for i in range(size)
            ]
            ops.append(("bulk", relation, rows))
            live.extend((relation, values) for values in rows)
        elif live:
            target = draw(st.sampled_from(live))
            ops.append(("delete", target[0], target[1]))
    return ops


def apply_mutations(db: Database, ops) -> None:
    for kind, relation, payload in ops:
        if kind == "insert":
            db.insert(relation, *payload)
        elif kind == "bulk":
            db.insert_all(relation, payload)
        else:
            db.relation(relation).delete(Row(relation, payload))


def seed_reference(union: UnionQuery, db: Database):
    """The seed-era path: per-disjunct evaluation, dedup in order."""
    seen: dict[tuple, None] = {}
    for disjunct in union.disjuncts:
        for row in evaluate_query(disjunct, db):
            seen.setdefault(row)
    return list(seen)


def greedy_reference(union: UnionQuery, db: Database):
    """Planner-independent set semantics via the greedy evaluator."""
    rows = set()
    for disjunct in union.disjuncts:
        for binding in reference_bindings(disjunct, db):
            rows.add(head_tuple(disjunct, binding))
    return rows


class TestPlannedEqualsReference:
    @given(db=databases(), union=unions())
    @settings(max_examples=60, deadline=None)
    def test_serial_planned_memoized(self, db, union):
        """Planner + memo routing reproduces the seed path exactly
        (multiset and order) and the greedy evaluator's set."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            reference = seed_reference(union, db)
            planner = QueryPlanner(db)
            memo = SubplanMemo()
            cold = union.evaluate(db, planner, memo)
            warm = union.evaluate(db, planner, memo)
            greedy = greedy_reference(union, db)
        assert cold == reference  # multiset AND order
        assert warm == reference
        assert Counter(cold) == Counter(reference)
        assert set(cold) == greedy

    @given(db=databases(), union=unions(),
           parallelism=st.sampled_from([2, 3]))
    @settings(max_examples=40, deadline=None)
    def test_thread_parallel_planned(self, db, union, parallelism):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            reference = seed_reference(union, db)
            planner = QueryPlanner(db)
            memo = SubplanMemo()
            result = union.evaluate(
                db, planner, memo, parallelism=parallelism
            )
        assert result == reference

    @given(ops=mutation_sequences(), shards=st.sampled_from(SHARD_COUNTS),
           union=unions())
    @settings(max_examples=40, deadline=None)
    def test_sharded_planned(self, ops, shards, union):
        """Sharded storage is invisible to planned union evaluation."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            unsharded = Database(make_schema())
            apply_mutations(unsharded, ops)
            sharded = Database(make_schema(), shards=shards)
            apply_mutations(sharded, ops)
            reference = seed_reference(union, unsharded)
            result = union.evaluate(
                sharded, QueryPlanner(sharded), SubplanMemo()
            )
        assert result == reference

    @given(db=databases(), union=unions(), ops=mutation_sequences())
    @settings(max_examples=40, deadline=None)
    def test_mutations_between_runs(self, db, union, ops):
        """Warm planner/memo state never leaks across mutations: the
        post-mutation evaluation matches a fresh reference."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            planner = QueryPlanner(db)
            memo = SubplanMemo()
            before = union.evaluate(db, planner, memo)
            assert before == seed_reference(union, db)

            apply_mutations(db, ops)
            after = union.evaluate(db, planner, memo)
            again = union.evaluate(db, planner, memo)
            reference = seed_reference(union, db)
        assert after == reference
        assert again == reference
        assert set(after) == greedy_reference(union, db)


class TestProcessExecution:
    """One deterministic process-pool case (spawn cost bounds how many
    examples are affordable; thread/serial properties above cover the
    merge logic exhaustively)."""

    def test_process_parallel_planned_equals_reference(self):
        db = Database(make_schema(), shards=3)
        db.insert_all("R", [(i % 5, (i + 1) % 5) for i in range(60)])
        db.insert_all("S", [(i % 5, (i + 2) % 5) for i in range(40)])
        db.insert_all("T", [(i % 5, i % 3, i % 4) for i in range(30)])
        a, b, c = Variable("A"), Variable("B"), Variable("C")
        union = UnionQuery([
            ConjunctiveQuery("Q", [a, c], [
                RelationalAtom("R", [a, b]),
                RelationalAtom("S", [b, c]),
            ]),
            ConjunctiveQuery("Q", [a, b], [
                RelationalAtom("R", [a, b]),
                RelationalAtom("T", [b, a, c]),
            ]),
            ConjunctiveQuery("Q", [a, b], [
                RelationalAtom("R", [a, b]),
            ], [ComparisonAtom(a, ComparisonOp.LT, Constant(2))]),
        ])
        reference = seed_reference(union, db)
        result = union.evaluate(
            db, QueryPlanner(db), SubplanMemo(),
            parallelism=3, use_processes=True,
        )
        assert result == reference
