"""Unit tests for the runtime concurrency sanitizer primitives."""

import asyncio
import socket
import threading
import time

import pytest

from repro.analysis import sanitizer
from repro.analysis.sanitizer import (
    ConcurrencySanitizerError,
    bind_owner,
    check_blocking_call,
    check_cache_serve,
    check_mutation,
    check_ordinal_run,
    execution_region,
    is_active,
    monotonic_stream,
    note_effective_mutations,
    owner_context,
    parallel_region,
    release_owner,
    sanitize_mode,
    set_sanitize,
)
from repro.relational.database import Database
from repro.relational.schema import RelationSchema, Schema


@pytest.fixture
def active():
    """Enable the sanitizer for one test, restoring the previous mode
    (and the real time.sleep / socket.socket) afterwards."""
    previous = set_sanitize("always")
    try:
        yield
    finally:
        set_sanitize(previous)


def make_db(shards=1):
    schema = Schema([RelationSchema("R", ["a", "b"])])
    db = Database(schema, shards=shards)
    db.insert_all("R", [(i, i % 5) for i in range(20)])
    return db


class TestModeSwitch:
    def test_default_is_off(self, request):
        if request.config.getoption("--sanitize"):
            pytest.skip("suite runs with the sanitizer always-on")
        assert sanitize_mode() == "off"
        assert not is_active()

    def test_set_returns_previous(self, active):
        assert sanitize_mode() == "always"
        assert set_sanitize("always") == "always"

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            set_sanitize("sometimes")

    def test_off_restores_blocking_primitives(self):
        # Start from off even when the suite runs --sanitize, so the
        # captured sleep/socket are the real primitives.
        previous = set_sanitize("off")
        real_sleep = time.sleep
        real_socket = socket.socket
        try:
            set_sanitize("always")
            assert time.sleep is not real_sleep
            assert socket.socket is not real_socket
            set_sanitize("off")
            assert time.sleep is real_sleep
            assert socket.socket is real_socket
        finally:
            set_sanitize(previous)

    def test_checks_are_noops_when_off(self):
        previous = set_sanitize("off")
        try:
            db = make_db()
            bind_owner(db, "nobody")  # no-op: never registered
            check_mutation(db)
            check_cache_serve("cache", db, -999)
            check_ordinal_run("merge", [(3, None), (1, None)])
        finally:
            set_sanitize(previous)


class TestOwnership:
    def test_unowned_mutation_passes(self, active):
        db = make_db()
        db.insert("R", 100, 0)

    def test_owned_mutation_outside_grant_raises(self, active):
        db = make_db()
        bind_owner(db, "test lane")
        try:
            with pytest.raises(ConcurrencySanitizerError) as err:
                db.insert("R", 100, 0)
            assert err.value.check == "lane-ownership"
            assert "test lane" in str(err.value)
        finally:
            release_owner(db)

    def test_grant_allows_mutation(self, active):
        db = make_db()
        bind_owner(db, "test lane")
        try:
            with owner_context(db):
                db.insert("R", 100, 0)
        finally:
            release_owner(db)

    def test_grant_is_thread_local(self, active):
        db = make_db()
        bind_owner(db, "test lane")
        errors = []

        def mutate():
            try:
                db.insert("R", 101, 0)
            except ConcurrencySanitizerError as exc:
                errors.append(exc)

        try:
            with owner_context(db):
                worker = threading.Thread(target=mutate)
                worker.start()
                worker.join()
        finally:
            release_owner(db)
        assert len(errors) == 1
        assert errors[0].check == "lane-ownership"

    def test_double_bind_raises(self, active):
        db = make_db()
        bind_owner(db, "first lane")
        try:
            with pytest.raises(ConcurrencySanitizerError) as err:
                bind_owner(db, "second lane")
            assert "first lane" in str(err.value)
        finally:
            release_owner(db)

    def test_release_then_rebind(self, active):
        db = make_db()
        bind_owner(db, "first")
        release_owner(db)
        bind_owner(db, "second")
        release_owner(db)


class TestRegions:
    def test_mutation_from_other_thread_mid_region_raises(self, active):
        db = make_db()
        errors = []

        def mutate():
            try:
                db.insert("R", 200, 0)
            except ConcurrencySanitizerError as exc:
                errors.append(exc)

        with execution_region(db):
            worker = threading.Thread(target=mutate)
            worker.start()
            worker.join()
        assert [e.check for e in errors] == ["execution-affinity"]

    def test_same_thread_mutation_in_region_passes(self, active):
        db = make_db()
        with execution_region(db):
            db.insert("R", 200, 0)

    def test_region_is_reentrant_same_thread(self, active):
        db = make_db()
        with execution_region(db), execution_region(db):
            pass

    def test_second_thread_entering_region_raises(self, active):
        db = make_db()
        errors = []

        def evaluate():
            try:
                with execution_region(db):
                    pass
            except ConcurrencySanitizerError as exc:
                errors.append(exc)

        with execution_region(db):
            worker = threading.Thread(target=evaluate)
            worker.start()
            worker.join()
        assert [e.check for e in errors] == ["execution-affinity"]

    def test_parallel_region_blocks_every_thread(self, active):
        db = make_db()
        with parallel_region(db):
            with pytest.raises(ConcurrencySanitizerError) as err:
                db.insert("R", 300, 0)
        assert err.value.check == "shard-fan-out"
        db.insert("R", 300, 0)  # legal again after the fan-out joins


class TestCacheServe:
    def test_matching_serve_passes(self, active):
        db = make_db()
        check_cache_serve("cache", db, db.stats_version, ("t",), ("t",))

    def test_stale_version_raises(self, active):
        db = make_db()
        stored = db.stats_version
        db.insert("R", 400, 0)
        with pytest.raises(ConcurrencySanitizerError) as err:
            check_cache_serve("cache", db, stored)
        assert err.value.check == "stale-cache"

    def test_stale_fingerprint_raises(self, active):
        db = make_db()
        with pytest.raises(ConcurrencySanitizerError) as err:
            check_cache_serve(
                "cache", db, db.stats_version, ("old",), ("new",)
            )
        assert err.value.check == "stale-cache"

    def test_unbumped_version_raises_at_serve(self, active, monkeypatch):
        db = make_db()
        monkeypatch.setattr(
            Database, "_note_stats_mutations", lambda self, count: None
        )
        db.insert("R", 401, 0)  # shadow advances, live version does not
        with pytest.raises(ConcurrencySanitizerError) as err:
            check_cache_serve("cache", db, db.stats_version)
        assert err.value.check == "version-integrity"


class TestOrdinalChecks:
    def test_increasing_run_passes(self, active):
        check_ordinal_run("merge", [(1, "a"), (2, "b"), (5, "c")])

    def test_disorder_raises(self, active):
        with pytest.raises(ConcurrencySanitizerError) as err:
            check_ordinal_run("merge", [(1, "a"), (3, "b"), (2, "c")])
        assert err.value.check == "ordinal-merge"

    def test_duplicate_raises_when_strict(self, active):
        with pytest.raises(ConcurrencySanitizerError):
            check_ordinal_run("merge", [(1, "a"), (1, "b")])
        check_ordinal_run("merge", [(1, "a"), (1, "b")], strict=False)

    def test_monotonic_stream_is_lazy(self, active):
        stream = monotonic_stream(
            "merge", [(2, "a"), (1, "b")], key=lambda p: p[0]
        )
        assert next(stream) == (2, "a")
        with pytest.raises(ConcurrencySanitizerError):
            next(stream)


class TestBlockingDetection:
    def test_sleep_off_loop_passes(self, active):
        time.sleep(0)

    def test_sleep_on_loop_raises(self, active):
        async def block():
            time.sleep(0)

        with pytest.raises(ConcurrencySanitizerError) as err:
            asyncio.run(block())
        assert err.value.check == "event-loop-blocking"

    def test_blocking_socket_on_loop_raises(self, active):
        async def block():
            with socket.socket() as sock:
                sock.connect(("127.0.0.1", 9))

        with pytest.raises(ConcurrencySanitizerError) as err:
            asyncio.run(block())
        assert err.value.check == "event-loop-blocking"

    def test_nonblocking_socket_on_loop_passes(self, active):
        async def poll():
            with socket.socket() as sock:
                sock.setblocking(False)
                try:
                    sock.connect(("127.0.0.1", 9))
                except (BlockingIOError, OSError):
                    pass

        asyncio.run(poll())

    def test_check_blocking_call_off_loop_is_silent(self, active):
        check_blocking_call("time.sleep")


class TestStateHygiene:
    def test_registry_entries_die_with_the_database(self, active):
        db = make_db()
        bind_owner(db, "short-lived")
        key = id(db)
        assert key in sanitizer._owners
        del db
        import gc

        gc.collect()
        assert key not in sanitizer._owners

    def test_note_effective_mutations_tracks_counts(self, active):
        db = make_db()
        note_effective_mutations(db, 0)  # seed shadow at current version
        db.insert("R", 500, 0)
        check_cache_serve("cache", db, db.stats_version)  # still in sync
