"""Mutation-kill suite for the plan verifier.

The verifier is only worth running everywhere if it actually *rejects*
corrupted plans instead of rubber-stamping them.  Each test here takes a
sound plan the planner produced, seeds one corruption of a specific
class — swapped steps, dropped/duplicated/foreign residuals, mislabeled
access paths, broken pushdown accounting, bogus emptiness claims — and
asserts the rulebook kills it with a step-indexed
:class:`~repro.analysis.verifier.PlanVerificationError`.
"""

import dataclasses

import pytest

from repro.analysis.verifier import (
    PlanVerificationError,
    check_plan,
    verify_plan,
    verify_plans,
)
from repro.cq.parser import parse_query
from repro.cq.plan import QueryPlanner, plan_query
from repro.cq.terms import Constant, Variable
from repro.cq.ucq import parse_union_query
from repro.relational.database import Database
from repro.relational.schema import RelationSchema, Schema


@pytest.fixture
def db():
    schema = Schema([
        RelationSchema("Big", ["a", "b"]),
        RelationSchema("Small", ["b", "c"]),
    ])
    db = Database(schema)
    db.insert_all("Big", [(i, i % 50) for i in range(200)])
    db.insert_all("Small", [(1, 100), (2, 200)])
    return db


def replace_step(plan, index, **changes):
    steps = list(plan.steps)
    steps[index] = dataclasses.replace(steps[index], **changes)
    return dataclasses.replace(plan, steps=tuple(steps))


def assert_killed(plan, db, *needles):
    with pytest.raises(PlanVerificationError) as excinfo:
        verify_plan(plan, db)
    rendered = str(excinfo.value)
    assert "step" in rendered
    for needle in needles:
        assert needle in rendered
    assert excinfo.value.violations


class TestSoundPlansPass:
    def test_join_plan(self, db):
        q = parse_query("Q(A, C) :- Big(A, B), Small(B, C)")
        assert check_plan(plan_query(q, db), db) == []

    def test_pushdown_plans(self, db):
        for text in [
            "Q(A) :- Big(A, B), B = 1",
            "Q(A) :- Big(A, B), B > 10, B < 40",
            "Q(A, C) :- Big(A, B), Small(B, C), A = C",
            "Q(A) :- Big(A, A)",
            "Q(A, B) :- Big(A, B), A > B",
            "Q(A, C) :- Big(A, B), Small(B, C), B >= 1, C = 100",
        ]:
            plan = plan_query(parse_query(text), db)
            assert check_plan(plan, db) == [], text

    def test_empty_plans(self, db):
        for text in [
            "Q(A) :- Big(A, B), B = 1, B = 2",
            "Q(A) :- Big(A, B), B > 5, B < 2",
            "Q(A) :- Big(A, B), 1 = 2",
        ]:
            plan = plan_query(parse_query(text), db)
            assert plan.empty
            assert check_plan(plan, db) == [], text

    def test_rebound_plans(self, db):
        planner = QueryPlanner(db, verify="always")
        first = planner.plan(parse_query("Q(X) :- Big(X, Y), Y = 1"))
        second = planner.plan(parse_query("Q(A) :- Big(A, B), B = 1"))
        assert planner.hits >= 1  # the second went through rebinding
        for plan in (first, second):
            assert check_plan(plan, db) == []

    def test_union_plans(self, db):
        union = parse_union_query(
            "Q(A) :- Big(A, B), B = 1\nQ(A) :- Small(A, C)"
        )
        plans = union.plan(db)
        assert verify_plans(plans, db) is plans

    def test_verify_plan_returns_the_plan(self, db):
        plan = plan_query(parse_query("Q(A) :- Big(A, B)"), db)
        assert verify_plan(plan, db) is plan


class TestMutationKill:
    """One corruption class per test; every one must be rejected."""

    def test_swapped_steps_leave_probe_unbound(self, db):
        q = parse_query("Q(A, C) :- Big(A, B), Small(B, C)")
        plan = plan_query(q, db)
        bad = dataclasses.replace(plan, steps=(plan.steps[1], plan.steps[0]))
        assert_killed(bad, db, "step 1", "not bound by any prior step")

    def test_dropped_residual(self, db):
        q = parse_query("Q(A, B) :- Big(A, B), A > B")
        plan = plan_query(q, db)
        bad = replace_step(plan, 0, comparisons=())
        assert_killed(bad, db, "step 1", "dropped")

    def test_double_applied_residual(self, db):
        q = parse_query("Q(A, C) :- Big(A, B), Small(B, C), A > C")
        plan = plan_query(q, db)
        index = next(
            i for i, step in enumerate(plan.steps) if step.comparisons
        )
        step = plan.steps[index]
        bad = replace_step(
            plan, index, comparisons=step.comparisons + step.comparisons
        )
        assert_killed(bad, db, "double-applied")

    def test_foreign_residual(self, db):
        from repro.cq.atoms import ComparisonAtom
        from repro.relational.expressions import ComparisonOp

        q = parse_query("Q(A, B) :- Big(A, B)")
        plan = plan_query(q, db)
        foreign = ComparisonAtom(
            Variable("A"), ComparisonOp.LT, Constant(10)
        )
        bad = replace_step(plan, 0, comparisons=(foreign,))
        assert_killed(bad, db, "step 1", "does not belong to the query")

    def test_residual_scheduled_before_bound(self, db):
        q = parse_query("Q(A, C) :- Big(A, B), Small(B, C), A > C")
        plan = plan_query(q, db)
        # Move every residual onto step 1, before C is bound.
        comparisons = tuple(
            c for step in plan.steps for c in step.comparisons
        )
        bad = replace_step(plan, 0, comparisons=comparisons)
        bad = replace_step(bad, 1, comparisons=())
        assert_killed(bad, db, "step 1", "not bound by this or any prior")

    def test_mislabel_hash_probe_on_free_position(self, db):
        q = parse_query("Q(A, B) :- Big(A, B)")
        plan = plan_query(q, db)
        bad = replace_step(
            plan,
            0,
            lookup_positions=(0,),
            lookup_terms=(Constant(7),),
            introduces=(plan.steps[0].introduces[1],),
        )
        assert_killed(bad, db, "step 1", "equality class carries no")

    def test_mislabel_range_on_probed_position(self, db):
        q = parse_query("Q(A) :- Big(A, B), B = 1")
        plan = plan_query(q, db)
        step = plan.steps[0]
        position = step.lookup_positions[0]
        from repro.relational.statistics import Interval

        bad = replace_step(
            plan,
            0,
            range_position=position,
            range_interval=Interval(lo=0),
        )
        assert_killed(bad, db, "step 1")

    def test_range_interval_mismatch(self, db):
        q = parse_query("Q(A) :- Big(A, B), B > 10, B < 40")
        plan = plan_query(q, db)
        index, step = next(
            (i, s)
            for i, s in enumerate(plan.steps)
            if s.range_position is not None
        )
        from repro.relational.statistics import Interval

        bad = replace_step(plan, index, range_interval=Interval(lo=999))
        assert_killed(bad, db, f"step {index + 1}", "differs from")

    def test_range_without_interval(self, db):
        q = parse_query("Q(A) :- Big(A, B), B > 10")
        plan = plan_query(q, db)
        index = next(
            i
            for i, s in enumerate(plan.steps)
            if s.range_position is not None
        )
        bad = replace_step(plan, index, range_interval=None)
        assert_killed(bad, db, f"step {index + 1}", "set together")

    def test_dropped_step(self, db):
        q = parse_query("Q(A, C) :- Big(A, B), Small(B, C)")
        plan = plan_query(q, db)
        bad = dataclasses.replace(plan, steps=plan.steps[:1])
        with pytest.raises(PlanVerificationError) as excinfo:
            verify_plan(bad, db)
        assert "not evaluated by any step" in str(excinfo.value)

    def test_duplicated_step(self, db):
        q = parse_query("Q(A, C) :- Big(A, B), Small(B, C)")
        plan = plan_query(q, db)
        bad = dataclasses.replace(
            plan, steps=plan.steps + (plan.steps[1],)
        )
        with pytest.raises(PlanVerificationError) as excinfo:
            verify_plan(bad, db)
        assert "evaluated by 2 steps" in str(excinfo.value)

    def test_wrong_atom_index(self, db):
        q = parse_query("Q(A, C) :- Big(A, B), Small(B, C)")
        plan = plan_query(q, db)
        first, second = plan.steps
        bad = dataclasses.replace(
            plan,
            steps=(
                dataclasses.replace(first, atom_index=second.atom_index),
                dataclasses.replace(second, atom_index=first.atom_index),
            ),
        )
        assert_killed(bad, db, "differs from query atom")

    def test_dropped_pushed_equality(self, db):
        q = parse_query("Q(A) :- Big(A, B), B = 1")
        plan = plan_query(q, db)
        bad = dataclasses.replace(plan, pushed=())
        with pytest.raises(PlanVerificationError) as excinfo:
            verify_plan(bad, db)
        assert "pushed equalities" in str(excinfo.value)

    def test_dropped_pushed_range(self, db):
        q = parse_query("Q(A) :- Big(A, B), B > 10")
        plan = plan_query(q, db)
        bad = dataclasses.replace(plan, pushed_ranges=())
        with pytest.raises(PlanVerificationError) as excinfo:
            verify_plan(bad, db)
        assert "pushed ranges" in str(excinfo.value)

    def test_bogus_step_pushed_attribution(self, db):
        from repro.cq.atoms import ComparisonAtom
        from repro.relational.expressions import ComparisonOp

        q = parse_query("Q(A, B) :- Big(A, B)")
        plan = plan_query(q, db)
        bogus = ComparisonAtom(Variable("A"), ComparisonOp.EQ, Constant(3))
        bad = replace_step(plan, 0, pushed=(bogus,))
        assert_killed(bad, db, "step 1", "no closure absorbed")

    def test_nonempty_plan_claiming_empty(self, db):
        q = parse_query("Q(A) :- Big(A, B), B = 1")
        plan = plan_query(q, db)
        bad = dataclasses.replace(plan, empty=True,
                                  empty_reason="false ground comparison")
        violations = check_plan(bad, db)
        assert any("carries join steps" in v for v in violations)
        assert any("every ground comparison" in v for v in violations)

    def test_unknown_empty_reason(self, db):
        q = parse_query("Q(A) :- Big(A, B), B = 1, B = 2")
        plan = plan_query(q, db)
        bad = dataclasses.replace(plan, empty_reason="cosmic rays")
        violations = check_plan(bad, db)
        assert any("unknown empty reason" in v for v in violations)

    def test_first_step_variable_probe(self, db):
        q = parse_query("Q(A, C) :- Big(A, B), Small(B, C)")
        plan = plan_query(q, db)
        step = plan.steps[0]
        bad = replace_step(
            plan,
            0,
            lookup_positions=(0,),
            lookup_terms=(Variable("Z"),),
            introduces=step.introduces,
        )
        assert_killed(bad, db, "step 1")

    def test_uncovered_position(self, db):
        q = parse_query("Q(A) :- Big(A, A)")
        plan = plan_query(q, db)
        bad = replace_step(plan, 0, equal_positions=())
        assert_killed(bad, db, "step 1",
                      "neither probed, introduced, nor equality-checked")

    def test_union_disjunct_corruption_is_caught(self, db):
        union = parse_union_query(
            "Q(A) :- Big(A, B), B = 1\nQ(A) :- Small(A, C)"
        )
        plans = list(union.plan(db))
        plans[1] = dataclasses.replace(
            plans[1],
            steps=(dataclasses.replace(plans[1].steps[0], comparisons=(
                plans[0].pushed[0],
            )),),
        )
        with pytest.raises(PlanVerificationError):
            verify_plans(plans, db)


class TestVerifierModes:
    def test_planner_rejects_bad_mode(self, db):
        with pytest.raises(ValueError):
            QueryPlanner(db, verify="sometimes")

    def test_set_plan_verification_rejects_bad_mode(self):
        from repro.cq.plan import set_plan_verification

        with pytest.raises(ValueError):
            set_plan_verification("sometimes")

    def test_global_switch_round_trips(self, db):
        from repro.cq.plan import plan_verification, set_plan_verification

        before = set_plan_verification("always")
        try:
            plan = plan_query(parse_query("Q(A) :- Big(A, B)"), db)
            assert plan.steps
            assert plan_verification() == "always"
        finally:
            set_plan_verification(before)

    def test_planner_off_overrides_global(self, db):
        from repro.cq.plan import set_plan_verification

        before = set_plan_verification("always")
        try:
            planner = QueryPlanner(db, verify="off")
            plan = planner.plan(parse_query("Q(A) :- Big(A, B)"))
            assert plan.steps
        finally:
            set_plan_verification(before)

    def test_error_message_is_step_indexed_and_lists_all(self, db):
        q = parse_query("Q(A, C) :- Big(A, B), Small(B, C)")
        plan = plan_query(q, db)
        bad = dataclasses.replace(plan, steps=(plan.steps[1], plan.steps[0]))
        with pytest.raises(PlanVerificationError) as excinfo:
            verify_plan(bad, db)
        assert excinfo.value.plan is bad
        assert len(excinfo.value.violations) >= 1
        assert "violation(s)" in str(excinfo.value)
