"""Seeded-race kill tests: each test injects a real concurrency
violation and FAILS unless the sanitizer catches it.

This mirrors the plan verifier's kill suite (PR 8): the sanitizer's
value is only proven by demonstrating that the bugs it exists for do
not slip past it.  Every scenario is deterministic — violations are
injected by monkeypatching, not by racing timers.
"""

import asyncio
import threading

import pytest

from repro.analysis.sanitizer import (
    ConcurrencySanitizerError,
    set_sanitize,
)
from repro.citation.generator import CitationEngine
from repro.cq import evaluation
from repro.cq.parallel import execute_plan_parallel
from repro.cq.parser import parse_query
from repro.cq.plan import plan_query
from repro.cq.subplan import SubplanMemo
from repro.gtopdb.sample import paper_database
from repro.gtopdb.views import paper_views
from repro.relational.database import Database, RelationInstance
from repro.relational.schema import RelationSchema, Schema
from repro.service.batcher import EngineLane
from repro.views.registry import ViewRegistry


@pytest.fixture
def active():
    previous = set_sanitize("always")
    try:
        yield
    finally:
        set_sanitize(previous)


@pytest.fixture
def inactive():
    # Force the sanitizer off even when the suite runs --sanitize, so
    # the control test really exercises the unsanitized path.
    previous = set_sanitize("off")
    try:
        yield
    finally:
        set_sanitize(previous)


@pytest.fixture
def engine():
    db = paper_database()
    return CitationEngine(db, ViewRegistry(db.schema, paper_views()))


QUERY = 'Q(N) :- Family(F, N, Ty), Ty = "gpcr"'


class TestWorkerThreadMutation:
    """Kill: a thread mutates the database mid-``cite_batch``."""

    def test_mutation_mid_batch_is_caught(
        self, active, engine, monkeypatch
    ):
        caught = []
        real = evaluation.enumerate_bindings

        def racing(query, db, *args, **kwargs):
            # Mid-evaluation (the execution region is open), another
            # thread mutates the database under the pipeline.
            def mutate():
                try:
                    db.insert("Family", "F999", "racer", "other")
                except ConcurrencySanitizerError as exc:
                    caught.append(exc)

            yielded = False
            for binding in real(query, db, *args, **kwargs):
                if not yielded:
                    yielded = True
                    worker = threading.Thread(target=mutate)
                    worker.start()
                    worker.join()
                yield binding

        monkeypatch.setattr(evaluation, "enumerate_bindings", racing)
        engine.cite_batch([parse_query(QUERY)])
        assert caught and all(
            e.check == "execution-affinity" for e in caught
        ), (
            "the sanitizer FAILED to catch a worker-thread mutation "
            "during an in-flight citation evaluation"
        )

    def test_same_mutation_passes_without_sanitizer(
        self, inactive, engine, monkeypatch
    ):
        # Control: with the sanitizer off the race goes undetected —
        # exactly the silent corruption the sanitizer exists for.
        caught = []
        real = evaluation.enumerate_bindings

        def racing(query, db, *args, **kwargs):
            def mutate():
                try:
                    db.insert("Family", "F999", "racer", "other")
                except ConcurrencySanitizerError as exc:
                    caught.append(exc)

            yielded = False
            for binding in real(query, db, *args, **kwargs):
                if not yielded:
                    yielded = True
                    worker = threading.Thread(target=mutate)
                    worker.start()
                    worker.join()
                yield binding

        monkeypatch.setattr(evaluation, "enumerate_bindings", racing)
        engine.cite_batch([parse_query(QUERY)])
        assert caught == []


class TestStaleCacheServe:
    """Kill: a version-keyed cache serves without re-validating."""

    def test_patched_out_memo_validation_is_caught(
        self, active, engine, monkeypatch
    ):
        queries = [parse_query(QUERY), parse_query(
            'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"'
        )]
        engine.cite_batch(queries)  # populate the sub-plan memo

        def stale_lookup(self, key, db, version, fingerprint):
            entry = self._entries.get(key)
            if entry is None:
                return None
            return entry[0]  # BUG: serves without any validation

        monkeypatch.setattr(SubplanMemo, "lookup", stale_lookup)
        engine.db.insert("Family", "F998", "stale", "gpcr")
        with pytest.raises(ConcurrencySanitizerError) as err:
            engine.cite_batch(queries)
        assert err.value.check == "stale-cache", (
            "the sanitizer FAILED to catch a memo serving a stale entry"
        )

    def test_unbumped_stats_version_is_caught(
        self, active, engine, monkeypatch
    ):
        engine.cite(QUERY)  # populate the plan cache
        monkeypatch.setattr(
            Database, "_note_stats_mutations", lambda self, count: None
        )
        # The mutation lands but the version stays flat, so the plan
        # cache's own version comparison (correctly) still hits — a
        # silent stale serve only the shadow count can expose.
        engine.db.insert("Family", "F997", "unbumped", "gpcr")
        with pytest.raises(ConcurrencySanitizerError) as err:
            engine.cite(QUERY)
        assert err.value.check == "version-integrity", (
            "the sanitizer FAILED to catch a mutation path that skips "
            "the stats_version bump"
        )


class TestEventLoopBlocking:
    """Kill: blocking calls executed on the service event loop."""

    def test_sleep_in_coroutine_is_caught(self, active):
        import time

        async def handler():
            time.sleep(0.01)  # BUG: stalls every request on the loop

        with pytest.raises(ConcurrencySanitizerError) as err:
            asyncio.run(handler())
        assert err.value.check == "event-loop-blocking", (
            "the sanitizer FAILED to catch time.sleep on the event loop"
        )

    def test_blocking_socket_in_coroutine_is_caught(self, active):
        import socket

        async def handler():
            with socket.socket() as sock:
                sock.connect(("127.0.0.1", 9))  # BUG: sync connect

        with pytest.raises(ConcurrencySanitizerError) as err:
            asyncio.run(handler())
        assert err.value.check == "event-loop-blocking", (
            "the sanitizer FAILED to catch blocking socket I/O on the "
            "event loop"
        )


class TestOrdinalMergeDisorder:
    """Kill: a shard merge that breaks insertion-ordinal order."""

    @pytest.fixture
    def sharded_db(self):
        schema = Schema([
            RelationSchema("Big", ["a", "b"]),
            RelationSchema("Small", ["b", "c"]),
        ])
        db = Database(schema, shards=3)
        db.insert_batch({
            "Big": [(i, i % 10) for i in range(120)],
            "Small": [(b, b * 2) for b in range(10)],
        })
        return db

    def test_disordered_shard_pairs_are_caught(
        self, active, sharded_db, monkeypatch
    ):
        real = RelationInstance.shard_lookup_pairs

        def disordered(self, shard, positions, values):
            return list(reversed(real(self, shard, positions, values)))

        monkeypatch.setattr(
            RelationInstance, "shard_lookup_pairs", disordered
        )
        plan = plan_query(
            parse_query("Q(A, C) :- Big(A, B), Small(B, C)"), sharded_db
        )
        with pytest.raises(ConcurrencySanitizerError) as err:
            list(execute_plan_parallel(
                plan, sharded_db, parallelism=2, min_partition=1
            ))
        assert err.value.check == "ordinal-merge", (
            "the sanitizer FAILED to catch an out-of-order shard merge"
        )

    def test_corrupted_shard_partition_is_caught(
        self, active, sharded_db
    ):
        plan = plan_query(
            parse_query("Q(A, C) :- Big(A, B), Small(B, C)"), sharded_db
        )
        # Corrupt one shard of the relation the plan seeds from: the
        # per-shard counts no longer merge to the aggregate (a
        # lost/duplicated row).
        instance = sharded_db.relation(plan.steps[0].atom.relation)
        instance._shards[0].stats.cardinality += 1
        with pytest.raises(ConcurrencySanitizerError) as err:
            list(execute_plan_parallel(
                plan, sharded_db, parallelism=2, min_partition=1
            ))
        assert err.value.check == "shard-partition", (
            "the sanitizer FAILED to catch shard statistics that no "
            "longer partition the aggregate"
        )


class TestLaneOwnershipBypass:
    """Kill: a mutation that bypasses the engine lane."""

    def test_direct_mutation_while_lane_runs_is_caught(
        self, active, engine
    ):
        async def scenario():
            lane = EngineLane(engine)
            lane.start()
            try:
                # Sanctioned path: mutations go through lane jobs.
                await lane.submit(
                    lambda: engine.db.insert("Family", "F996", "ok", "gpcr")
                )
                # BUG: a thread writes directly, bypassing the lane.
                with pytest.raises(ConcurrencySanitizerError) as err:
                    await asyncio.to_thread(
                        engine.db.insert, "Family", "F995", "bypass", "gpcr"
                    )
                return err.value
            finally:
                await lane.stop()

        error = asyncio.run(scenario())
        assert error.check == "lane-ownership", (
            "the sanitizer FAILED to catch a mutation bypassing the "
            "engine lane"
        )
        assert "engine lane" in str(error)
