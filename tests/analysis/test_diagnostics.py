"""Tests for the stable-coded query diagnostics (repro.analysis)."""

import pytest

from repro.analysis import (
    Diagnostic,
    analyze_query,
    analyze_union,
    has_errors,
    render_diagnostics,
)
from repro.cq.parser import parse_query
from repro.cq.ucq import parse_union_query
from repro.relational.database import Database
from repro.relational.schema import RelationSchema, Schema


@pytest.fixture
def db():
    schema = Schema([
        RelationSchema("Big", ["a", "b"]),
        RelationSchema("Small", ["b", "c"]),
        RelationSchema("Names", ["n"]),
    ])
    db = Database(schema)
    db.insert_all("Big", [(i, i % 50) for i in range(200)])
    db.insert_all("Small", [(1, 100), (2, 200)])
    db.insert_all("Names", [("ada",), ("grace",)])
    return db


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestErrors:
    def test_contradictory_equalities_qa201(self, db):
        q = parse_query("Q(A) :- Big(A, B), B = 1, B = 2")
        diagnostics = analyze_query(q, db)
        assert "QA201" in codes(diagnostics)
        assert has_errors(diagnostics)

    def test_empty_interval_qa202(self, db):
        q = parse_query("Q(A) :- Big(A, B), B > 5, B < 2")
        assert "QA202" in codes(analyze_query(q, db))

    def test_false_ground_comparison_qa203(self, db):
        q = parse_query("Q(A) :- Big(A, B), 1 = 2")
        assert "QA203" in codes(analyze_query(q, db))

    def test_errors_sort_first(self, db):
        q = parse_query("Q(A) :- Big(A, C), Small(B, D), B = 1, B = 2")
        diagnostics = analyze_query(q, db)
        assert diagnostics[0].severity == "error"

    def test_transitive_contradiction(self, db):
        q = parse_query("Q(A) :- Big(A, B), Small(B, C), B = 1, C = B, C = 2")
        assert "QA201" in codes(analyze_query(q, db))


class TestWarnings:
    def test_cartesian_product_qa101(self, db):
        q = parse_query("Q(A, C) :- Big(A, X), Small(C, Y)")
        diagnostics = analyze_query(q, db)
        assert "QA101" in codes(diagnostics)
        finding = next(d for d in diagnostics if d.code == "QA101")
        assert finding.step is not None
        assert not has_errors(diagnostics)

    def test_joined_query_has_no_qa101(self, db):
        q = parse_query("Q(A, C) :- Big(A, B), Small(B, C)")
        assert "QA101" not in codes(analyze_query(q, db))

    def test_dangling_atom_qa103(self, db):
        q = parse_query("Q(A) :- Big(A, B), Names(N)")
        assert "QA103" in codes(analyze_query(q, db))

    def test_single_atom_is_not_dangling(self, db):
        q = parse_query("Q(A) :- Big(A, B)")
        assert "QA103" not in codes(analyze_query(q, db))

    def test_single_use_variable_qa104(self, db):
        q = parse_query("Q(A) :- Big(A, B)")
        assert "QA104" in codes(analyze_query(q, db))

    def test_underscore_variables_exempt_from_qa104(self, db):
        q = parse_query("Q(A) :- Big(A, _B)")
        assert "QA104" not in codes(analyze_query(q, db))

    def test_head_variables_exempt_from_qa104(self, db):
        q = parse_query("Q(A, B) :- Big(A, B)")
        assert "QA104" not in codes(analyze_query(q, db))

    def test_mixed_type_constant_qa105(self, db):
        # Names.n holds strings; comparing against a number is a
        # run-time MixedTypeComparisonWarning waiting to happen.
        q = parse_query("Q(N) :- Names(N), N > 5")
        assert "QA105" in codes(analyze_query(q, db))

    def test_well_typed_range_has_no_qa105(self, db):
        q = parse_query("Q(A) :- Big(A, B), B > 5")
        assert "QA105" not in codes(analyze_query(q, db))

    def test_without_db_only_static_checks_run(self):
        q = parse_query("Q(A) :- Big(A, B), B = 1, B = 2")
        diagnostics = analyze_query(q)
        assert "QA201" in codes(diagnostics)
        assert "QA101" not in codes(diagnostics)
        assert "QA105" not in codes(diagnostics)


class TestUnions:
    def test_subsumed_disjunct_qa102(self, db):
        union = parse_union_query(
            "Q(A) :- Big(A, B), B = 1\nQ(A) :- Big(A, B)"
        )
        diagnostics = analyze_union(union, db)
        finding = next(d for d in diagnostics if d.code == "QA102")
        assert finding.disjunct == 0
        assert "disjunct 1" in finding.message

    def test_equivalent_disjuncts_keep_first(self, db):
        union = parse_union_query(
            "Q(A) :- Big(A, B), B = 1\nQ(X) :- Big(X, Y), Y = 1"
        )
        diagnostics = analyze_union(union, db)
        flagged = [d.disjunct for d in diagnostics if d.code == "QA102"]
        assert flagged == [1]

    def test_empty_disjunct_demoted_to_qa110(self, db):
        union = parse_union_query(
            "Q(A) :- Big(A, B), B = 1, B = 2\nQ(A) :- Big(A, B)"
        )
        diagnostics = analyze_union(union, db)
        assert "QA110" in codes(diagnostics)
        assert not has_errors(diagnostics)

    def test_all_disjuncts_empty_qa204(self, db):
        union = parse_union_query(
            "Q(A) :- Big(A, B), B = 1, B = 2\n"
            "Q(A) :- Big(A, B), B > 5, B < 2"
        )
        diagnostics = analyze_union(union, db)
        assert "QA204" in codes(diagnostics)
        assert has_errors(diagnostics)

    def test_healthy_union_is_clean(self, db):
        union = parse_union_query(
            "Q(A) :- Big(A, B), B = 1\nQ(A) :- Small(A, B), B = 100"
        )
        diagnostics = analyze_union(union, db)
        assert not has_errors(diagnostics)
        assert "QA102" not in codes(diagnostics)


class TestRendering:
    def test_describe_carries_code_and_location(self):
        finding = Diagnostic("QA101", "warning", "boom", step=2, disjunct=1)
        text = finding.describe()
        assert "QA101" in text
        assert "[disjunct 1]" in text
        assert "[step 2]" in text

    def test_render_diagnostics_empty(self):
        assert render_diagnostics([]) == "no findings"

    def test_explain_appends_diagnostics(self, db):
        from repro.cq.plan import plan_query

        q = parse_query("Q(A) :- Big(A, B), B = 1, B = 2")
        plan = plan_query(q, db)
        text = plan.explain(diagnostics=analyze_query(q, db))
        assert "diagnostics:" in text
        assert "QA201" in text

    def test_union_explain_appends_diagnostics(self, db):
        union = parse_union_query(
            "Q(A) :- Big(A, B), B = 1\nQ(A) :- Big(A, B)"
        )
        text = union.explain(db, diagnostics=analyze_union(union, db))
        assert "diagnostics:" in text
        assert "QA102" in text

    def test_at_least_six_diagnostic_classes(self, db):
        # The stable code table must cover >= 6 distinct classes.
        seen = set()
        q1 = parse_query("Q(A, C) :- Big(A, X), Small(C, Y)")
        seen.update(codes(analyze_query(q1, db)))
        q2 = parse_query("Q(A) :- Big(A, B), Names(N), B = 1, B = 2")
        seen.update(codes(analyze_query(q2, db)))
        q3 = parse_query("Q(N) :- Names(N), N > 5")
        seen.update(codes(analyze_query(q3, db)))
        q4 = parse_query("Q(A) :- Big(A, B), B > 5, B < 2")
        seen.update(codes(analyze_query(q4, db)))
        q5 = parse_query("Q(A) :- Big(A, B), 1 = 2")
        seen.update(codes(analyze_query(q5, db)))
        union = parse_union_query(
            "Q(A) :- Big(A, B), B = 1, B = 2\nQ(A) :- Big(A, B), B > 9, B < 2"
        )
        seen.update(codes(analyze_union(union, db)))
        assert len(seen) >= 6


class TestWorkloadIntegration:
    def test_run_workload_aggregates_diagnostics(self, db):
        from repro.citation.generator import CitationEngine
        from repro.views.citation_view import CitationView
        from repro.views.registry import ViewRegistry
        from repro.workload.runner import run_workload

        view = CitationView.from_strings(
            view="lambda A. V1(A, B) :- Big(A, B)",
            citation_query="lambda A. CV1(A, B) :- Big(A, B)",
        )
        engine = CitationEngine(
            db, ViewRegistry(db.schema, [view])
        )
        report = run_workload(
            engine,
            [
                "Q(A) :- Big(A, B), B = 1, B = 2",
                "Q(A) :- Big(A, B), B = 1",
            ],
            analyze=True,
        )
        assert report.diagnostics.get("QA201") == 1
        assert "diagnostics:" in report.describe()
        assert "QA201=1" in report.describe()

    def test_run_workload_without_analyze_is_silent(self, db):
        from repro.citation.generator import CitationEngine
        from repro.views.citation_view import CitationView
        from repro.views.registry import ViewRegistry
        from repro.workload.runner import run_workload

        view = CitationView.from_strings(
            view="lambda A. V1(A, B) :- Big(A, B)",
            citation_query="lambda A. CV1(A, B) :- Big(A, B)",
        )
        engine = CitationEngine(db, ViewRegistry(db.schema, [view]))
        report = run_workload(engine, ["Q(A) :- Big(A, B), B = 1"])
        assert report.diagnostics == {}
        assert "diagnostics" not in report.describe()
