"""Self-tests for the RL1xx repo-invariant lint.

Every rule is exercised against a fixture file written to violate it
(``tests/analysis/lint_fixtures/``, excluded from ruff because the
code is *supposed* to be bad), and the whole src tree must be clean —
the same gate CI runs via ``tools/run_repro_lint.py src``.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.lint import LintFinding, lint_file, run_lint

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def codes(findings):
    return sorted({finding.code for finding in findings})


class TestRules:
    def test_rl101_flags_async_service_mutation(self):
        findings = lint_file(FIXTURES / "service" / "rl101_async_mutation.py")
        assert codes(findings) == ["RL101"]
        assert len(findings) == 2  # insert_all + invalidate_data
        assert all("engine-lane job" in f.message for f in findings)

    def test_rl102_flags_unbounded_caches_only(self):
        findings = lint_file(FIXTURES / "rl102_unbounded_cache.py")
        assert codes(findings) == ["RL102"]
        flagged = {f.message.split("`")[1] for f in findings}
        assert flagged == {"_plan_cache", "_result_memo"}

    def test_rl103_flags_discarded_submissions(self):
        findings = lint_file(FIXTURES / "service" / "rl103_discarded_submit.py")
        assert codes(findings) == ["RL103"]
        assert len(findings) == 2  # submit + acite_batch, not the await

    def test_rl104_flags_external_internal_access(self):
        findings = lint_file(FIXTURES / "rl104_shard_internals.py")
        assert codes(findings) == ["RL104"]
        flagged = {f.message.split("`")[1] for f in findings}
        assert flagged == {"_rows", "_shards"}  # self._rows is fine

    def test_rl105_flags_bare_and_swallowing_excepts(self):
        findings = lint_file(FIXTURES / "rl105_bare_except.py")
        assert codes(findings) == ["RL105"]
        assert len(findings) == 2  # bare + pass-only, not the logged one

    def test_rl104_is_scoped_to_non_relational_paths(self, tmp_path):
        relational = tmp_path / "relational"
        relational.mkdir()
        source = "def f(instance):\n    return instance._rows\n"
        inside = relational / "storage.py"
        inside.write_text(source)
        outside = tmp_path / "storage.py"
        outside.write_text(source)
        assert lint_file(inside) == []
        assert codes(lint_file(outside)) == ["RL104"]

    def test_rl101_is_scoped_to_service_paths(self, tmp_path):
        source = (
            "class H:\n"
            "    async def handle(self, engine, rows):\n"
            "        return engine.db.insert_all('R', rows)\n"
        )
        service = tmp_path / "service"
        service.mkdir()
        inside = service / "handlers.py"
        inside.write_text(source)
        outside = tmp_path / "handlers.py"
        outside.write_text(source)
        assert codes(lint_file(inside)) == ["RL101"]
        assert lint_file(outside) == []

    def test_lane_job_closure_pattern_is_sanctioned(self, tmp_path):
        # The repo's actual pattern: the mutation lives in a *sync*
        # closure submitted to the lane — RL101 must not flag it.
        service = tmp_path / "service"
        service.mkdir()
        path = service / "handlers.py"
        path.write_text(
            "class H:\n"
            "    async def handle(self, engine, lane, rows):\n"
            "        def job():\n"
            "            return engine.db.insert_all('R', rows)\n"
            "        return await lane.submit(job)\n"
        )
        assert lint_file(path) == []

    def test_syntax_error_reports_rl100(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        findings = lint_file(bad)
        assert codes(findings) == ["RL100"]


class TestRepoGate:
    def test_src_tree_is_clean(self):
        assert run_lint([REPO_ROOT / "src"]) == []

    def test_every_fixture_is_flagged(self):
        for fixture in sorted(FIXTURES.rglob("*.py")):
            assert lint_file(fixture), f"{fixture} raised no findings"

    def test_finding_describe_format(self):
        finding = LintFinding("RL199", "message", Path("x.py"), 7)
        assert finding.describe() == "x.py:7: RL199 message"


class TestRunnerTool:
    def run_tool(self, *args):
        return subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "run_repro_lint.py"),
             *args],
            capture_output=True,
            text=True,
        )

    def test_clean_on_src(self):
        result = self.run_tool("src")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "clean" in result.stdout

    def test_findings_set_exit_one(self):
        result = self.run_tool("tests/analysis/lint_fixtures")
        assert result.returncode == 1
        for code in ("RL101", "RL102", "RL103", "RL104", "RL105"):
            assert code in result.stdout, f"{code} missing from output"

    def test_missing_path_is_an_error(self):
        result = self.run_tool("no/such/tree")
        assert result.returncode == 2


class TestCliLintFlag:
    @pytest.fixture
    def project(self, tmp_path):
        path = tmp_path / "demo.json"
        subprocess.run(
            [sys.executable, "-m", "repro.cli", "init-demo", str(path)],
            check=True,
            capture_output=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src")},
        )
        return path

    def test_analyze_lint_surfaces_rl_next_to_qa(self, project):
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "analyze", str(project),
             'Q(N) :- Family(F, N, Ty), Ty = "gpcr"', "--lint"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "repro lint: clean" in result.stdout
