"""RL103 fixture: lane submissions whose futures are discarded.

Deliberately violating file — the lint self-test asserts RL103 flags
it.  Never imported; excluded from ruff (see pyproject.toml).
"""


async def fire_and_forget(lane, engine, query, job):
    # VIOLATION: the returned future is dropped, so the job's result
    # and errors are lost.
    lane.submit(job)
    # VIOLATION: coroutine created and discarded, never awaited.
    engine.acite_batch([query])
    # OK: awaited.
    return await lane.submit_cite(query)
