"""RL101 fixture: async service code mutating the engine directly.

Deliberately violating file — the lint self-test asserts RL101 flags
it.  Never imported; excluded from ruff (see pyproject.toml).
"""


class BadHandler:
    def __init__(self, engine, lane):
        self.engine = engine
        self.lane = lane

    async def handle_insert(self, relation, rows):
        # VIOLATION: the mutation runs on the event-loop thread instead
        # of being queued as a lane job.
        inserted = self.engine.db.insert_all(relation, rows)
        self.engine.invalidate_data()
        return inserted
