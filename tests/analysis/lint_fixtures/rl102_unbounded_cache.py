"""RL102 fixture: a cache-named dict attribute with no bound.

Deliberately violating file — the lint self-test asserts RL102 flags
it.  Never imported; excluded from ruff (see pyproject.toml).
"""

from collections import OrderedDict


class UnboundedCaches:
    def __init__(self):
        # VIOLATION x2: no `*max*` attribute anywhere in the class.
        self._plan_cache = {}
        self._result_memo = OrderedDict()


class BoundedCache:
    def __init__(self):
        # OK: a max sibling declares the bound.
        self._plan_cache = {}
        self._plan_cache_max = 128
