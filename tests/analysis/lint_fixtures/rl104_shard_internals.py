"""RL104 fixture: shard-internal attribute access outside relational/.

Deliberately violating file — the lint self-test asserts RL104 flags
it.  Never imported; excluded from ruff (see pyproject.toml).
"""


def count_rows_badly(db, relation):
    instance = db.relation(relation)
    # VIOLATION: reaches into the storage representation.
    return len(instance._rows)


def peek_shards_badly(instance):
    # VIOLATION: shard list is an internal of the relational layer.
    return [len(shard.rows) for shard in instance._shards]


class FineInternally:
    def __init__(self):
        self._rows = {}

    def size(self):
        # OK: `self._rows` is this class's own attribute.
        return len(self._rows)
