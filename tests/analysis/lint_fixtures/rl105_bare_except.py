"""RL105 fixture: bare and silently-swallowing excepts.

Deliberately violating file — the lint self-test asserts RL105 flags
it.  Never imported; excluded from ruff (see pyproject.toml).
"""


def swallow_everything(engine, query):
    try:
        return engine.cite(query)
    except:  # VIOLATION: bare except
        return None


def swallow_silently(engine, query):
    try:
        return engine.cite(query)
    except Exception:  # VIOLATION: broad except, pass-only body
        pass


def handled_fine(engine, query, log):
    try:
        return engine.cite(query)
    except Exception as exc:  # OK: the failure is reported
        log.warning("citation failed: %s", exc)
        return None
