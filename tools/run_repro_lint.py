#!/usr/bin/env python3
"""Run the repo-invariant lint (``RL1xx`` rules) over source trees.

Usage::

    python tools/run_repro_lint.py [PATH ...]

With no arguments, lints ``src`` relative to the repository root (the
directory above this script).  The rules live in
:mod:`repro.analysis.lint` and encode this repository's concurrency
and cache conventions — the static counterpart of the runtime
sanitizer (``REPRO_SANITIZE`` / ``pytest --sanitize``).  CI runs this
alongside ruff in the lint job; ``repro analyze --lint`` surfaces the
same findings next to the ``QA`` query diagnostics.

Exit status: 0 when clean, 1 when any finding is reported, 2 on
unusable paths.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.lint import run_lint  # noqa: E402


def main(argv: list[str]) -> int:
    raw = argv or ["src"]
    paths = []
    for name in raw:
        path = Path(name)
        if not path.is_absolute():
            path = REPO_ROOT / path
        if not path.exists():
            print(f"error: no such path: {name}", file=sys.stderr)
            return 2
        paths.append(path)
    findings = run_lint(paths)
    for finding in findings:
        try:
            shown = finding.path.relative_to(REPO_ROOT)
        except ValueError:
            shown = finding.path
        print(f"{shown}:{finding.line}: {finding.code} {finding.message}")
    if findings:
        print(f"{len(findings)} RL finding(s)")
        return 1
    print("repro lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
