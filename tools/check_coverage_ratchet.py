#!/usr/bin/env python3
"""Enforce the coverage ratchet: fail when coverage drops below the floor.

Usage::

    python tools/check_coverage_ratchet.py COVERAGE_JSON [RATCHET_JSON]

``COVERAGE_JSON`` is the report written by
``pytest --cov=repro --cov-report=json:coverage.json`` (coverage.py's
JSON format: the overall percentage lives at ``totals.percent_covered``).
``RATCHET_JSON`` defaults to ``tools/coverage_ratchet.json`` next to
this script and holds the floor under ``minimum_percent_covered``.

The ratchet only tightens: when the measured coverage clears the floor
with more than ``JITTER_BUFFER`` points to spare, the script rewrites
the JSON to ``measured - JITTER_BUFFER`` on the spot, so improvements
lock in instead of silently eroding as headroom.  Commit the rewritten
file with the change that earned it.  The buffer absorbs run-to-run
coverage noise (timing-dependent branches, platform-specific lines) so
the auto-tightened floor does not flake the next build.  Lowering the
floor to make a red build green defeats the point — add tests instead.

Exit status: 0 when coverage >= floor, 1 below the floor, 2 on malformed
input.  Standard library only, so it runs anywhere the repo does.
"""

import json
import sys
from pathlib import Path

#: Percentage points kept between the measured coverage and the
#: auto-tightened floor, absorbing run-to-run jitter.
JITTER_BUFFER = 1.0


def main(argv: list[str]) -> int:
    if len(argv) not in (2, 3):
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print(f"usage: {argv[0]} COVERAGE_JSON [RATCHET_JSON]",
              file=sys.stderr)
        return 2

    coverage_path = Path(argv[1])
    ratchet_path = (
        Path(argv[2]) if len(argv) == 3
        else Path(__file__).with_name("coverage_ratchet.json")
    )

    try:
        coverage = json.loads(coverage_path.read_text())
        measured = float(coverage["totals"]["percent_covered"])
    except (OSError, ValueError, KeyError, TypeError) as error:
        print(f"error: cannot read coverage from {coverage_path}: {error}",
              file=sys.stderr)
        return 2
    try:
        ratchet = json.loads(ratchet_path.read_text())
        floor = float(ratchet["minimum_percent_covered"])
    except (OSError, ValueError, KeyError, TypeError) as error:
        print(f"error: cannot read ratchet from {ratchet_path}: {error}",
              file=sys.stderr)
        return 2

    if measured < floor:
        print(
            f"coverage ratchet FAILED: {measured:.2f}% covered is below "
            f"the {floor:.2f}% floor in {ratchet_path}.\n"
            "Add tests for the uncovered lines (see the coverage report "
            "artifact); do not lower the floor."
        )
        return 1

    print(f"coverage ratchet OK: {measured:.2f}% covered "
          f"(floor {floor:.2f}%).")
    tightened = round(measured - JITTER_BUFFER, 1)
    if tightened > floor:
        ratchet["minimum_percent_covered"] = tightened
        try:
            ratchet_path.write_text(json.dumps(ratchet, indent=2) + "\n")
        except OSError as error:
            print(
                f"warning: could not auto-tighten {ratchet_path}: {error}",
                file=sys.stderr,
            )
        else:
            print(
                f"coverage ratchet tightened: minimum_percent_covered "
                f"{floor:.1f} -> {tightened:.1f} in {ratchet_path}; "
                "commit the updated file to lock the gain in."
            )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
