#!/usr/bin/env python3
"""Fail when a Markdown file contains a broken relative link.

Usage::

    python tools/check_doc_links.py README.md ARCHITECTURE.md docs/*.md

Checks every inline link ``[text](target)`` whose target is relative
(no URL scheme, not an in-page ``#anchor``): the target path, resolved
against the file's directory and stripped of any ``#fragment``, must
exist.  External URLs and anchors are ignored — this is a docs-drift
guard, not a crawler.  Exits 1 listing every broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline Markdown links; deliberately simple — our docs don't nest
#: brackets or use reference-style links.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SCHEME = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def broken_links(path: Path) -> list[str]:
    failures = []
    for target in LINK.findall(path.read_text(encoding="utf-8")):
        if SCHEME.match(target) or target.startswith("#"):
            continue
        resolved = path.parent / target.split("#", 1)[0]
        if not resolved.exists():
            failures.append(f"{path}: broken link -> {target}")
    return failures


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_doc_links.py FILE.md [FILE.md ...]",
              file=sys.stderr)
        return 1
    failures: list[str] = []
    for name in argv:
        path = Path(name)
        if not path.exists():
            failures.append(f"{path}: file does not exist")
            continue
        failures.extend(broken_links(path))
    for failure in failures:
        print(failure, file=sys.stderr)
    if failures:
        return 1
    print(f"checked {len(argv)} file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
