#!/usr/bin/env python3
"""Fail when the Markdown docs drift from the code.

Usage::

    python tools/check_doc_links.py README.md ARCHITECTURE.md docs/*.md
    python tools/check_doc_links.py --coverage
    python tools/check_doc_links.py --coverage README.md docs/*.md

Two independent guards:

**Link checking** (any file arguments): every inline link
``[text](target)`` whose target is relative (no URL scheme, not an
in-page ``#anchor``) must resolve — the target path, resolved against
the file's directory and stripped of any ``#fragment``, must exist.
External URLs and anchors are ignored — this is a docs-drift guard,
not a crawler.

**Coverage** (``--coverage``): walks every Markdown page reachable
from ``docs/index.md`` via relative links and requires that

- every *public* module under ``src/repro`` (no path component
  starting with ``_``) is mentioned on some reachable page, either as
  a ``repro/pkg/mod.py`` path or as dotted ``repro.pkg.mod``;
- every example script under ``examples/`` is referenced by name.

Exits 1 listing every broken link and every orphaned module/example.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline Markdown links; deliberately simple — our docs don't nest
#: brackets or use reference-style links.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SCHEME = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")

#: The documentation front door the coverage walk starts from.
FRONT_DOOR = Path("docs") / "index.md"


def broken_links(path: Path) -> list[str]:
    failures = []
    for target in LINK.findall(path.read_text(encoding="utf-8")):
        if SCHEME.match(target) or target.startswith("#"):
            continue
        resolved = path.parent / target.split("#", 1)[0]
        if not resolved.exists():
            failures.append(f"{path}: broken link -> {target}")
    return failures


def reachable_pages(start: Path) -> list[Path]:
    """Every Markdown file reachable from *start* via relative links."""
    pages: list[Path] = []
    seen: set[Path] = set()
    queue = [start.resolve()]
    while queue:
        page = queue.pop()
        if page in seen or not page.exists():
            continue
        seen.add(page)
        pages.append(page)
        for target in LINK.findall(page.read_text(encoding="utf-8")):
            if SCHEME.match(target) or target.startswith("#"):
                continue
            resolved = (page.parent / target.split("#", 1)[0]).resolve()
            if resolved.suffix == ".md":
                queue.append(resolved)
    return pages


def public_modules(repo: Path) -> list[str]:
    """``pkg/mod.py``-style paths of every public module in src/repro."""
    root = repo / "src" / "repro"
    modules = []
    for path in root.rglob("*.py"):
        rel = path.relative_to(root)
        if any(part.startswith("_") for part in rel.parts):
            continue
        modules.append(rel.as_posix())
    return sorted(modules)


def coverage_orphans(repo: Path) -> list[str]:
    """Public modules and examples no reachable docs page mentions."""
    front = repo / FRONT_DOOR
    if not front.exists():
        return [f"{front}: documentation front door does not exist"]
    pages = reachable_pages(front)
    text = "\n".join(page.read_text(encoding="utf-8") for page in pages)
    failures = []
    for module in public_modules(repo):
        dotted = "repro." + module[: -len(".py")].replace("/", ".")
        if f"repro/{module}" not in text and dotted not in text:
            failures.append(
                f"src/repro/{module}: not mentioned on any page reachable "
                f"from {FRONT_DOOR.as_posix()}"
            )
    for example in sorted((repo / "examples").glob("*.py")):
        if example.stem.startswith("_"):
            continue
        if example.name not in text:
            failures.append(
                f"examples/{example.name}: not referenced on any page "
                f"reachable from {FRONT_DOOR.as_posix()}"
            )
    return failures


def main(argv: list[str]) -> int:
    coverage = "--coverage" in argv
    files = [name for name in argv if name != "--coverage"]
    if not files and not coverage:
        print(
            "usage: check_doc_links.py [--coverage] [FILE.md ...]",
            file=sys.stderr,
        )
        return 1
    failures: list[str] = []
    for name in files:
        path = Path(name)
        if not path.exists():
            failures.append(f"{path}: file does not exist")
            continue
        failures.extend(broken_links(path))
    if coverage:
        repo = Path(__file__).resolve().parent.parent
        failures.extend(coverage_orphans(repo))
    for failure in failures:
        print(failure, file=sys.stderr)
    if failures:
        return 1
    parts = []
    if files:
        parts.append(
            f"checked {len(files)} file(s): all relative links resolve"
        )
    if coverage:
        parts.append(
            "coverage OK: every public module and example is reachable "
            f"from {FRONT_DOOR.as_posix()}"
        )
    print("; ".join(parts))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
