#!/usr/bin/env python3
"""Enforce the typing ratchet: fail when mypy's error count grows.

Usage::

    python tools/check_typing_ratchet.py MYPY_REPORT [RATCHET_JSON]

``MYPY_REPORT`` is a file holding mypy's stdout (CI runs
``mypy > mypy_report.txt || true`` so the ratchet, not mypy's exit
status, decides the build).  The count is parsed from mypy's summary
line — ``Found N errors in M files (checked K source files)`` — or
taken as zero on ``Success: no issues found``.

``RATCHET_JSON`` defaults to ``tools/typing_ratchet.json`` next to this
script and holds the ceiling under ``maximum_errors``.  The ratchet
only tightens: when the measured count beats the ceiling the script
rewrites the JSON to the measured count on the spot, so improvements
lock in instead of silently eroding as headroom.  Commit the rewritten
file with the change that earned it.  Raising the ceiling to make a
red build green defeats the point — annotate the new code instead.

Exit status: 0 when errors <= ceiling, 1 above the ceiling, 2 on
malformed input.  Standard library only, so it runs anywhere the repo
does.
"""

import json
import re
import sys
from pathlib import Path

SUMMARY = re.compile(r"Found (\d+) errors? in \d+ files?")
SUCCESS = re.compile(r"Success: no issues found")


def count_errors(report: str) -> int | None:
    """Parse mypy's error count from its stdout, or None if absent."""
    match = SUMMARY.search(report)
    if match:
        return int(match.group(1))
    if SUCCESS.search(report):
        return 0
    return None


def main(argv: list[str]) -> int:
    if len(argv) not in (2, 3):
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print(f"usage: {argv[0]} MYPY_REPORT [RATCHET_JSON]",
              file=sys.stderr)
        return 2

    report_path = Path(argv[1])
    ratchet_path = (
        Path(argv[2]) if len(argv) == 3
        else Path(__file__).with_name("typing_ratchet.json")
    )

    try:
        report = report_path.read_text()
    except OSError as error:
        print(f"error: cannot read mypy report from {report_path}: {error}",
              file=sys.stderr)
        return 2
    measured = count_errors(report)
    if measured is None:
        print(
            f"error: no mypy summary line in {report_path} (did mypy "
            "crash before checking?)",
            file=sys.stderr,
        )
        return 2
    try:
        ratchet = json.loads(ratchet_path.read_text())
        ceiling = int(ratchet["maximum_errors"])
    except (OSError, ValueError, KeyError, TypeError) as error:
        print(f"error: cannot read ratchet from {ratchet_path}: {error}",
              file=sys.stderr)
        return 2

    if measured > ceiling:
        print(
            f"typing ratchet FAILED: {measured} mypy errors exceed the "
            f"ceiling of {ceiling} in {ratchet_path}.\n"
            "Annotate or fix the new errors (see the mypy report "
            "artifact); do not raise the ceiling."
        )
        return 1

    print(f"typing ratchet OK: {measured} mypy errors "
          f"(ceiling {ceiling}).")
    if measured < ceiling:
        ratchet["maximum_errors"] = measured
        try:
            ratchet_path.write_text(json.dumps(ratchet, indent=2) + "\n")
        except OSError as error:
            print(
                f"warning: could not auto-tighten {ratchet_path}: {error}",
                file=sys.stderr,
            )
        else:
            print(
                f"typing ratchet tightened: maximum_errors {ceiling} -> "
                f"{measured} in {ratchet_path}; commit the updated file "
                "to lock the gain in."
            )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
