"""Composite pushdown: EXPLAIN an equality + range query, one probe.

Run with::

    python examples/composite_pushdown.py

The scenario from the paper's workload: a GtoPdb-style portal slicing
families by type *and* a numeric threshold —
``Family(F, Ty, N), Ty = "gpcr", N >= threshold``.  Single-index
pushdown answers this with a hash probe on the equality and a residual
filter over the whole probe result; the *composite* access path answers
it with one probe against a hash index whose buckets are kept sorted on
the range column, bisecting inside the matching bucket.  This
walk-through shows the plan shapes EXPLAIN renders — note that the
pushed-predicate section lists each step's single chosen access path, so
an equality + range pair served by one composite probe can never read as
two separate probes — and times the composite probe against the
single-index execution it replaces.
"""

import dataclasses
import time

from repro.cq.evaluation import enumerate_bindings, reference_bindings
from repro.cq.executor import execute_plan
from repro.cq.parser import parse_query
from repro.cq.plan import QueryPlanner
from repro.relational.database import Database
from repro.relational.schema import RelationSchema, Schema

ROWS = 50_000
TYPES = ["gpcr", "nhr", "lgic", "vgic"]


def build_database() -> Database:
    """A family catalogue: four types, a uniform member count column."""
    schema = Schema([RelationSchema("Family", ["FID", "Type", "Members"])])
    db = Database(schema)
    db.insert_batch({
        "Family": [
            (f"F{i:05d}", TYPES[i % len(TYPES)], i % 12_500)
            for i in range(ROWS)
        ],
    })
    return db


def show_plan(planner: QueryPlanner, text: str) -> None:
    print(f"\n$ EXPLAIN {text}")
    print(planner.plan(parse_query(text)).explain())


def main() -> None:
    db = build_database()
    planner = QueryPlanner(db)
    print(f"catalogue: {ROWS} families, {len(TYPES)} types")

    # Equality alone: a hash access path (PR 2 behaviour).
    show_plan(planner, 'Q(F) :- Family(F, Ty, N), Ty = "gpcr"')

    # Range alone: an ordered access path over a sorted index (PR 3).
    show_plan(planner, "Q(F) :- Family(F, Ty, N), N < 40")

    # Equality + range on one atom: a *composite* access path — the
    # `composite index on [1]="gpcr" + [2] in ...` line shows both
    # predicates served by ONE hash-lookup-plus-bisect probe, and the
    # pushed-predicate section attributes both to that single path.
    show_plan(planner, 'Q(F) :- Family(F, Ty, N), Ty = "gpcr", N < 160')

    # The speedup the composite path buys on this shape.  The baseline
    # is *single-index* pushdown: the same plan with the range narrowing
    # stripped, i.e. a hash probe on Ty = "gpcr" followed by residual
    # filtering of the whole 12.5k-row bucket.
    query = parse_query('Q(F) :- Family(F, Ty, N), Ty = "gpcr", N < 160')
    composite_plan = planner.plan(query)
    single_plan = dataclasses.replace(
        composite_plan,
        steps=tuple(
            dataclasses.replace(step, range_position=None, range_interval=None)
            for step in composite_plan.steps
        ),
    )
    matched = sum(1 for __ in enumerate_bindings(query, db, planner=planner))
    sum(1 for __ in execute_plan(single_plan, db))  # warm the hash index

    started = time.perf_counter()
    composite = sum(1 for __ in execute_plan(composite_plan, db))
    composite_s = time.perf_counter() - started

    started = time.perf_counter()
    single = sum(1 for __ in execute_plan(single_plan, db))
    single_s = time.perf_counter() - started

    reference = sum(1 for __ in reference_bindings(query, db))
    assert composite == single == reference == matched == 160
    print(f"\ncomposite probe:      {composite} bindings in {composite_s:.6f}s")
    print(f"single-index + filter: {single} bindings in {single_s:.6f}s")
    print(f"speedup: {single_s / max(composite_s, 1e-9):.0f}x")


if __name__ == "__main__":
    main()
