"""Log-driven citation-view suggestion (Section 4 open problem).

"Our future work will also study ... using logs to understand database
usage and decide what citation views should be specified."  This example
simulates a query log against GtoPdb, mines it for frequent patterns, and
suggests parameterized citation views; the suggested views are then
registered and shown rewriting the logged queries.

Run with::

    python examples/view_suggestion.py
"""

from repro import CitationEngine, ViewRegistry, enumerate_rewritings
from repro.gtopdb import gtopdb_schema, paper_database
from repro.workload import QueryLog, coverage_of_views, suggest_views


def main() -> None:
    db = paper_database()

    # A plausible usage log: family lookups by type dominate; intro reads
    # and committee lookups follow.
    log = QueryLog()
    log.record('Q(N) :- Family(F, N, Ty), Ty = "gpcr"', frequency=40)
    log.record('Q(N) :- Family(F, N, Ty), Ty = "vgic"', frequency=12)
    log.record('Q(Tx) :- FamilyIntro(F, Tx), F = "11"', frequency=25)
    log.record(
        'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)', frequency=9
    )
    log.record(
        'Q(Pn) :- FC(F, C), Person(C, Pn, A), F = "11"', frequency=18
    )
    print(f"log: {len(log)} distinct queries, "
          f"{log.total_frequency} executions")

    suggested = suggest_views(
        log, ViewRegistry(gtopdb_schema()), k=4, max_view_atoms=2
    )
    print("\nsuggested citation views:")
    for view in suggested:
        print(f"  {view.view}")
    print(f"\nlog coverage: {coverage_of_views(suggested, log):.0%}")

    # Register the suggestions and rewrite the logged queries with them.
    registry = ViewRegistry(gtopdb_schema(), suggested)
    print("\nrewritings of the logged queries using suggested views:")
    for entry in log:
        rewritings = enumerate_rewritings(entry.query, registry)
        best = rewritings[0].query if rewritings else "(no rewriting)"
        print(f"  {entry.query}")
        print(f"    -> {best}")

    # And the suggested views immediately power citations (with their
    # default citation queries; owners refine C_V / F_V afterwards).
    engine = CitationEngine(db, registry)
    result = engine.cite('Q(N) :- Family(F, N, Ty), Ty = "gpcr"')
    sample = next(iter(result.tuples.values()))
    print(f"\nsample citation polynomial: {sample.polynomial}")


if __name__ == "__main__":
    main()
