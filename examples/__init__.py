"""Runnable example scripts (``python -m examples.<name>``).

Each module is self-contained; see docs/examples.md for the tour.
Requires ``repro`` on the path (``PYTHONPATH=src`` from the repository
root, or an editable install).
"""
