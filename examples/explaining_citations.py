"""Explaining citations, union queries, and the rewriting cache.

Three production concerns the core model leaves implicit:

1. **Explanations** — a curator asks "why is this committee credited?";
   :func:`repro.citation.explain` answers with the rewritings found,
   which survived the preference order, and what each tuple credits.
2. **Union queries** — users ask for "gpcr or vgic families"; SPJU's U
   combines per-disjunct citations with ``+`` (Section 3.1).
3. **Caching** (Section 4's "caching and materialization") — repository
   front-ends issue the same query shapes over and over; the rewriting
   cache recognizes α-equivalent queries and pays the Def 2.2 search once.

Run with::

    python examples/explaining_citations.py
"""

import time

from repro import CitationEngine
from repro.citation.explain import explain
from repro.gtopdb import paper_database, paper_registry

QUERY = 'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"'

UNION = (
    'Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)\n'
    'Q(N) :- Family(F, N, Ty), Ty = "vgic"'
)


def main() -> None:
    db = paper_database()
    registry = paper_registry()
    engine = CitationEngine(db, registry)

    # -- 1. explanations ------------------------------------------------
    print("== why is this cited the way it is? ==")
    result = engine.cite(QUERY)
    print(explain(result).describe())

    # -- 2. union queries -------------------------------------------------
    print("\n== union query (SPJU's U) ==")
    union_result = engine.cite_union(UNION)
    for output, tc in union_result.tuples.items():
        print(f"  {output}: {tc.polynomial}")

    # -- 3. rewriting cache ----------------------------------------------
    print("\n== rewriting cache (Section 4: caching) ==")
    cached = CitationEngine(db, registry, cache_rewritings=True)
    template = 'Q(N) :- Family(F, N, Ty), Ty = "{}"'

    start = time.perf_counter()
    for family_type in ("gpcr", "vgic", "gpcr", "gpcr", "vgic"):
        cached.cite(template.format(family_type))
    elapsed = time.perf_counter() - start
    stats = cached.rewriting_engine
    print(f"  5 queries, {stats.misses} cache misses, "
          f"{stats.hits} hits, {elapsed * 1000:.1f} ms total")
    print("  (α-equivalent query shapes share one Def 2.2 enumeration; "
          "distinct constants cache separately because absorbed "
          "λ-values differ)")


if __name__ == "__main__":
    main()
