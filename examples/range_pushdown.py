"""Range pushdown: EXPLAIN a selective inequality and watch it bisect.

Run with::

    python examples/range_pushdown.py

The scenario: a measurement archive where queries slice by a numeric
column (``Reading(Sensor, Day, Value)``).  The citation model prices
every query by the bindings it enumerates (Def 3.2), so a selective
``Value < bound`` must be absorbed by the access path — a bisect over a
sorted secondary index — rather than scanning the archive and filtering
afterwards.  This walk-through shows the plan shapes EXPLAIN renders for
range queries: the ordered access path, the merged interval, the
residual re-check, and the empty-interval short circuit.
"""

import time

from repro.cq.evaluation import enumerate_bindings, reference_bindings
from repro.cq.parser import parse_query
from repro.cq.plan import QueryPlanner
from repro.relational.database import Database
from repro.relational.schema import RelationSchema, Schema

ROWS = 50_000


def build_database() -> Database:
    """A measurement archive: one wide relation, a uniform Value column."""
    schema = Schema([RelationSchema("Reading", ["Sensor", "Day", "Value"])])
    db = Database(schema)
    db.insert_batch({
        "Reading": [(f"s{i % 100}", i % 365, i) for i in range(ROWS)],
    })
    return db


def show_plan(planner: QueryPlanner, text: str) -> None:
    print(f"\n$ EXPLAIN {text}")
    print(planner.plan(parse_query(text)).explain())


def main() -> None:
    db = build_database()
    planner = QueryPlanner(db)
    print(f"archive: {ROWS} readings")

    # One bound: Value < 40 becomes an ordered access path — note the
    # `ordered index on [2]` probe in the pushed-predicate section,
    # plus the residual re-check that guarantees the planned results
    # equal the reference evaluator's exactly.
    show_plan(planner, "Q(S, D) :- Reading(S, D, V), V < 40")

    # Two bounds merge into one interval [100, 140).
    show_plan(planner,
              "Q(S, D) :- Reading(S, D, V), V >= 100, V < 140")

    # Contradictory bounds are provably empty at plan time: no step ever
    # touches the data.
    show_plan(planner, "Q(S) :- Reading(S, D, V), V < 10, V > 90")

    # The speedup the ordered path buys on this shape.  One warm-up run
    # pays the plan-cache fill and the lazy sorted-index build; the
    # timed runs below are the steady state a repository front-end sees.
    query = parse_query("Q(S, D) :- Reading(S, D, V), V < 40")
    sum(1 for __ in enumerate_bindings(query, db, planner=planner))

    started = time.perf_counter()
    pushed = sum(1 for __ in enumerate_bindings(query, db, planner=planner))
    pushed_s = time.perf_counter() - started

    started = time.perf_counter()
    scanned = sum(1 for __ in reference_bindings(query, db))
    scanned_s = time.perf_counter() - started

    assert pushed == scanned == 40
    print(f"\nordered access path: {pushed} bindings in {pushed_s:.6f}s")
    print(f"scan-and-filter:     {scanned} bindings in {scanned_s:.6f}s")
    print(f"speedup: {scanned_s / max(pushed_s, 1e-9):.0f}x")


if __name__ == "__main__":
    main()
