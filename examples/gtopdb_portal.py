"""The GtoPdb scenario: from hard-coded page citations to general queries.

Walks the paper end to end on its running example:

1. the *status quo* — citations hard-coded into web-page views (the
   page-view baseline of the introduction);
2. Example 2.1 — the citation views V1–V5 and their JSON citations;
3. Examples 2.2/2.3 — rewritings of general queries, with the trade-offs
   the paper discusses;
4. Example 3.3 — the citation polynomial combining all rewritings;
5. the payoff — a general query the baseline cannot cite, cited by the
   rewriting model.

Run with::

    python examples/gtopdb_portal.py
"""

from repro import (
    CitationEngine,
    PageViewBaseline,
    comprehensive_policy,
    parse_query,
    render_text,
)
from repro.gtopdb import paper_database, paper_registry


def main() -> None:
    db = paper_database()
    registry = paper_registry()

    # -- 1. the status quo: hard-coded page citations ----------------------
    print("== 1. Page-view baseline (today's GtoPdb) ==")
    baseline = PageViewBaseline(db, registry)
    for view_name in ("V1", "V2"):
        pages = baseline.register_all_pages(view_name)
        print(f"  registered {pages} {view_name} pages")

    family_page = parse_query(
        'P(F, N, Ty) :- Family(F, N, Ty), F = "11"'
    )
    print("  family-11 landing page:", baseline.cite(family_page))

    general = parse_query(
        'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"'
    )
    print("  general query:", baseline.cite(general),
          "<- the baseline cannot cite it")

    # -- 2. Example 2.1: citation views ------------------------------------
    print("\n== 2. Citation views V1..V5 (Example 2.1) ==")
    for view in registry:
        print(f"  {view.name}: {view.view}")
    print("  FV1(11):", registry.get("V1").citation_for(db, ("11",)))
    print("  FV2(11):", registry.get("V2").citation_for(db, ("11",)))
    print("  FV3():  ", registry.get("V3").citation_for(db))
    print("  FV4(gpcr):", registry.get("V4").citation_for(db, ("gpcr",)))

    # -- 3. Examples 2.2 / 2.3: rewritings ----------------------------------
    print("\n== 3. Rewritings of the Example 2.3 query ==")
    engine = CitationEngine(db, registry, policy=comprehensive_policy())
    result = engine.cite(general)
    for rewriting in result.rewritings:
        tags = []
        tags.append("total" if rewriting.is_total else "partial")
        tags.append(f"{rewriting.view_count} view(s)")
        tags.append(
            f"{rewriting.residual_comparison_count} residual comparison(s)"
        )
        print(f"  {rewriting.query}   [{', '.join(tags)}]")

    # -- 4. Example 3.3: the citation polynomial -----------------------------
    print("\n== 4. Citation polynomials (Example 3.3) ==")
    example_33 = engine.cite(
        'Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)'
    )
    for output, tc in example_33.tuples.items():
        print(f"  cite({output}) = {tc.polynomial}")

    # -- 5. the payoff --------------------------------------------------------
    print("\n== 5. Citation for the general query ==")
    focused = CitationEngine(db, registry)
    print(render_text(focused.cite(general)))


if __name__ == "__main__":
    main()
