"""Quickstart: declare citation views over your own schema and cite queries.

Run with::

    python examples/quickstart.py

The scenario: a small bibliographic repository where per-collection curator
credits should appear in citations of any query touching a collection.
"""

from repro import (
    CitationEngine,
    CitationView,
    Database,
    RelationSchema,
    Schema,
    ViewRegistry,
    render_json,
    render_text,
)


def build_database() -> Database:
    """A toy repository: collections, datasets, curators."""
    schema = Schema([
        RelationSchema("Collection", ["CID", "CName", "Topic"], key=["CID"]),
        RelationSchema("Dataset", ["DID", "CID", "DName"], key=["DID"]),
        RelationSchema("Curator", ["CID", "Name"], key=["CID", "Name"]),
        RelationSchema("MetaData", ["Type", "Value"], key=["Type"]),
    ])
    db = Database(schema)
    db.insert_all("Collection", [
        ("c1", "Proteomics", "bio"),
        ("c2", "Astronomy Surveys", "astro"),
        ("c3", "Genome Annotations", "bio"),
    ])
    db.insert_all("Dataset", [
        ("d1", "c1", "Human proteome v2"),
        ("d2", "c1", "Yeast proteome"),
        ("d3", "c2", "Deep sky survey"),
        ("d4", "c3", "GRCh38 annotations"),
    ])
    db.insert_all("Curator", [
        ("c1", "Ada"), ("c1", "Grace"),
        ("c2", "Edsger"),
        ("c3", "Barbara"), ("c3", "Ada"),
    ])
    db.insert_all("MetaData", [
        ("Owner", "Open Repository Consortium"),
        ("URL", "repository.example.org"),
        ("Version", "7"),
    ])
    return db


def build_registry(db: Database) -> ViewRegistry:
    """Two citation views: per-collection and per-topic."""
    per_collection = CitationView.from_strings(
        view="lambda C. VColl(C, N, T) :- Collection(C, N, T)",
        citation_query=(
            "lambda C. CVColl(C, N, P) :- Collection(C, N, T), "
            "Curator(C, P)"
        ),
        labels=("Collection", "Name", "Curators"),
        description="One collection, credited to its curators.",
    )
    per_topic = CitationView.from_strings(
        view="lambda T. VTopic(C, N, T) :- Collection(C, N, T)",
        citation_query=(
            "lambda T. CVTopic(T, N, P) :- Collection(C, N, T), "
            "Curator(C, P)"
        ),
        labels=("Topic", "Name", "Curators"),
        description="All collections on one topic.",
    )
    datasets = CitationView.from_strings(
        view="lambda C. VData(D, C, N) :- Dataset(D, C, N)",
        citation_query=(
            "lambda C. CVData(C, N, P) :- Collection(C, N, T), Curator(C, P)"
        ),
        labels=("Collection", "Name", "Curators"),
        description="The datasets of one collection.",
    )
    return ViewRegistry(db.schema, [per_collection, per_topic, datasets])


def main() -> None:
    db = build_database()
    registry = build_registry(db)
    engine = CitationEngine(db, registry)

    # A general query no one attached a citation to: names of bio
    # collections together with their dataset names.
    query = (
        'Q(N, DN) :- Collection(C, N, T), T = "bio", Dataset(D, C, DN)'
    )
    result = engine.cite(query)

    print("=== rewritings ===")
    for rewriting in result.rewritings:
        print(" ", rewriting.query)

    print("\n=== per-tuple citation polynomials ===")
    for output, tc in result.tuples.items():
        print(f"  {output}: {tc.polynomial}")

    print("\n=== rendered citation ===")
    print(render_text(result))

    print("\n=== JSON ===")
    print(render_json(result))

    # SQL front-end: the same pipeline from a SELECT statement.
    sql_result = engine.cite_sql(
        "SELECT c.CName FROM Collection c, Curator k "
        "WHERE c.CID = k.CID AND k.Name = 'Ada'"
    )
    print("\n=== SQL query citation (text) ===")
    print(render_text(sql_result))


if __name__ == "__main__":
    main()
