"""Static analysis for queries and plans: diagnostics and the verifier.

Run with::

    python -m examples.query_diagnostics

The scenario: a query author keeps getting empty citations and wants to
know whether the database is missing data or the query is wrong.  The
diagnostics layer answers without running anything — each finding
carries a stable ``QA`` code — and the plan verifier demonstrates the
planner's structural safety net.
"""

import dataclasses

from repro.analysis import (
    PlanVerificationError,
    analyze_query,
    analyze_union,
    render_diagnostics,
    verify_plan,
)
from repro.cq.parser import parse_query
from repro.cq.plan import plan_query
from repro.cq.ucq import parse_union_query
from repro.relational.database import Database
from repro.relational.schema import RelationSchema, Schema


def build_database() -> Database:
    """A small laboratory inventory: samples, batches, labels."""
    schema = Schema([
        RelationSchema("Sample", ["SID", "Batch", "Mass"], key=["SID"]),
        RelationSchema("Batch", ["BID", "Site"], key=["BID"]),
        RelationSchema("Label", ["Text"]),
    ])
    db = Database(schema)
    db.insert_all("Sample", [
        (i, i % 4, 10.0 + i) for i in range(40)
    ])
    db.insert_all("Batch", [(b, f"site-{b % 2}") for b in range(4)])
    db.insert_all("Label", [("fragile",), ("bulk",)])
    return db


def show(title: str, text: str) -> None:
    print(f"=== {title} ===")
    print(text)
    print()


def main() -> None:
    db = build_database()

    # A healthy join: nothing to report beyond advisory lints.
    healthy = parse_query(
        "Q(S, Site) :- Sample(S, B, M), Batch(B, Site), M > 20"
    )
    show("healthy query", render_diagnostics(analyze_query(healthy, db)))

    # Contradictory equalities: the query provably returns no rows
    # (QA201), so `repro cite` refuses it with exit status 3 instead of
    # producing an empty citation.
    contradiction = parse_query(
        "Q(S) :- Sample(S, B, M), B = 1, B = 2"
    )
    show(
        "contradictory equalities",
        render_diagnostics(analyze_query(contradiction, db)),
    )

    # An empty range interval (QA202): the two bounds close an
    # impossible window, provable before touching any data.
    empty_range = parse_query(
        "Q(S) :- Sample(S, B, M), M > 30, M < 20"
    )
    show(
        "empty range interval",
        render_diagnostics(analyze_query(empty_range, db)),
    )

    # A cartesian product step (QA101): the Label atom shares no
    # variable with Sample, so the plan multiplies the two relations.
    cartesian = parse_query(
        "Q(S, T) :- Sample(S, B, M), Label(T)"
    )
    show(
        "cartesian product",
        render_diagnostics(analyze_query(cartesian, db)),
    )

    # Mixed-type comparison (QA105): Label.Text holds strings, so a
    # numeric range can never use the ordered access path and warns at
    # run time.
    mixed = parse_query("Q(T) :- Label(T), T > 7")
    show("mixed-type comparison", render_diagnostics(analyze_query(mixed, db)))

    # Union-level lints: the first disjunct is subsumed by the second
    # (QA102 — every row it returns, the second returns too), and a
    # provably-empty disjunct is only a warning (QA110) because the
    # union still answers.
    union = parse_union_query(
        "Q(S) :- Sample(S, B, M), B = 1\n"
        "Q(S) :- Sample(S, B, M)\n"
        "Q(S) :- Sample(S, B, M), B = 5, B = 6"
    )
    show("union diagnostics", render_diagnostics(analyze_union(union, db)))

    # The plan verifier: sound plans pass untouched...
    plan = plan_query(healthy, db)
    verify_plan(plan, db)
    print("=== plan verifier ===")
    print("sound plan: verified clean")

    # ...and a corrupted plan (here: the join steps swapped, so step 1
    # probes a variable nothing has bound yet) is rejected with
    # step-indexed violations.
    corrupted = dataclasses.replace(
        plan, steps=(plan.steps[1], plan.steps[0])
    )
    try:
        verify_plan(corrupted, db)
    except PlanVerificationError as error:
        print("corrupted plan rejected:")
        for violation in error.violations[:3]:
            print(f"  - {violation}")


if __name__ == "__main__":
    main()
