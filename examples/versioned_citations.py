"""Fixity: citations that bring back the data as it was cited (Section 4).

"Data may evolve over time, and citations should bring back the data as
seen at the time it was cited."  This example simulates GtoPdb curation
across three releases — committee members join and leave, introductions
get written — and cites the same query against each release.  Citations
carry the version tag; old citations keep crediting the people who were
responsible *then*.

Run with::

    python examples/versioned_citations.py
"""

from repro import VersionedCitationEngine, VersionedDatabase, render_text
from repro.gtopdb import gtopdb_schema, paper_registry

QUERY = 'Q(N) :- Family(F, N, Ty), Ty = "gpcr"'


def main() -> None:
    vdb = VersionedDatabase(gtopdb_schema(), initial_tag="empty")

    # Release 2015.1: the calcitonin family appears, curated by Hay alone.
    vdb.insert("Family", "11", "Calcitonin", "gpcr")
    vdb.insert("Person", "p1", "Hay", "U. Auckland")
    vdb.insert("FC", "11", "p1")
    vdb.insert("MetaData", "Owner", "Tony Harmar")
    vdb.insert("MetaData", "URL", "guidetopharmacology.org")
    vdb.insert("MetaData", "Version", "2015.1")
    release_2015 = vdb.commit("2015.1")

    # Release 2016.2: Poyner joins the committee; an introduction is
    # written by Brown; a second family appears.
    vdb.insert("Person", "p2", "Poyner", "Aston U.")
    vdb.insert("FC", "11", "p2")
    vdb.insert("FamilyIntro", "11", "The calcitonin peptide family")
    vdb.insert("Person", "p3", "Brown", "U. Cambridge")
    vdb.insert("FIC", "11", "p3")
    vdb.insert("Family", "14", "Orexin", "gpcr")
    vdb.insert("Person", "p9", "Palmer", "U. Bristol")
    vdb.insert("FC", "14", "p9")
    release_2016 = vdb.commit("2016.2")

    # Release 2017.1: Hay retires from the committee.
    vdb.delete("FC", "11", "p1")
    release_2017 = vdb.commit("2017.1")

    engine = VersionedCitationEngine(vdb, paper_registry())
    for release in (release_2015, release_2016, release_2017):
        result = engine.cite(QUERY, version=release)
        print(f"===== as of release {release} =====")
        print(render_text(result))
        print()

    # Fixity check: the old citation still credits Hay even though the
    # working database no longer lists him.
    old = engine.cite(QUERY, version="2016.2")
    credited = [
        record for record in old.records
        if "Hay" in str(record.get("Contributors", ""))
        or "Hay" in str(record.get("Committee", ""))
    ]
    print("2016.2 citation still credits Hay:", bool(credited))


if __name__ == "__main__":
    main()
