"""Comparing citation policies: comprehensive vs focused vs compact.

Section 3.3 leaves the interpretation of ``+``, ``·``, ``+R`` and ``Agg``
to the database owner.  This example runs one query under the three
shipped policies and shows how the same symbolic polynomial renders into
very different citations:

- *comprehensive* — the formal Def 3.3 semantics: every rewriting's
  citation is kept, records stay side by side;
- *focused* — order-based absorption (Section 3.4): only the preferred
  rewriting's citation survives, records are merged;
- *compact* — additionally merges across output tuples into a single
  result-set record (Example 3.4's outcome).

Run with::

    python examples/policy_comparison.py
"""

import json

from repro import (
    CitationEngine,
    compact_policy,
    comprehensive_policy,
    focused_policy,
)
from repro.gtopdb import paper_database, paper_registry

QUERY = 'Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"'


def main() -> None:
    db = paper_database()
    registry = paper_registry()
    policies = [
        comprehensive_policy(),
        focused_policy(registry),
        compact_policy(registry),
    ]

    for policy in policies:
        engine = CitationEngine(db, registry, policy=policy)
        result = engine.cite(QUERY)
        print(f"===== policy: {policy.name} =====")
        print(f"  +R interpretation: {policy.plus_r}; "
              f"dot: {policy.dot}; Agg: {policy.agg}")
        sample = next(iter(result.tuples.values()))
        print(f"  polynomial for {sample.output}: {sample.polynomial}")
        print(f"  citation records: {len(result.records)}")
        print(json.dumps(result.records, indent=2, default=str))
        print()

    # Size comparison: how much smaller do citations get?
    sizes = {}
    for policy in policies:
        engine = CitationEngine(db, registry, policy=policy)
        result = engine.cite(QUERY)
        total_monomials = sum(
            len(tc.polynomial.monomials()) for tc in result.tuples.values()
        )
        sizes[policy.name] = (total_monomials, len(result.records))
    print("===== summary (monomials across tuples, rendered records) =====")
    for name, (monomials, records) in sizes.items():
        print(f"  {name:15s} monomials={monomials:3d} records={records:3d}")


if __name__ == "__main__":
    main()
