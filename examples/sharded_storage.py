"""Hash-partitioned relation storage: shard-parallel scans & probes.

Run with::

    python -m examples.sharded_storage

The paper's deployment is a repository front-end over a large evolving
database (Section 4, "scalability").  ``Database(schema, shards=N)``
partitions every relation's extension into N shards — each with its own
rows, lazily-built hash indexes, and incremental statistics — while the
aggregate statistics the planner reads stay exactly what an unsharded
instance would maintain, so plans and estimates never move.

Sharding pays twice.  First-step scans and constant probes *fan out*
across shards (thread workers seed every shard concurrently and the
driver merges on global insertion ordinals, so output order is exactly
the serial executor's).  And process workers stop receiving a pickle of
the whole database: the driver ships the plan suffix plus only the
relations it touches once, and each worker gets just its shard's seed
slice — the ``SHIPPING`` counter below shows the pickled-byte gap
against whole-database shipping.

This walk-through builds a sharded instance, shows the partitioning and
the merged statistics, runs the same query serially / sharded-threaded /
sharded-process and checks the results are identical, and measures the
bytes shipped under projected vs whole-database payloads.
"""

import time

from repro.cq.executor import execute_plan
from repro.cq.parallel import SHIPPING, execute_plan_parallel
from repro.cq.parser import parse_query
from repro.cq.plan import plan_query
from repro.relational.database import Database
from repro.relational.schema import RelationSchema, Schema
from repro.relational.statistics import RelationStatistics

QUERY = "Q(A, T) :- Base(A, B, K), Dim(B, C), Sel(C, T)"


def build_database(rows: int = 8000, shards: int = 4) -> Database:
    """A large base relation under a selective multi-join, plus a fat
    relation the query never references (whole-database pickling ships
    it anyway; the plan-driven projection does not)."""
    schema = Schema([
        RelationSchema("Base", ["a", "b", "k"]),
        RelationSchema("Dim", ["b", "c"]),
        RelationSchema("Sel", ["c", "t"]),
        RelationSchema("Junk", ["x", "y", "z"]),
    ])
    db = Database(schema, shards=shards)
    hot = rows // 200
    spread = rows // 20
    tail = rows
    db.insert_batch({
        "Base": [(i, i % spread, i * 7) for i in range(rows)],
        "Dim": [(b, b) for b in range(hot)]
        + [(10 * spread + j, 10 * spread + j) for j in range(tail)],
        "Sel": [(c, c + 1) for c in range(hot)]
        + [(20 * spread + j, j) for j in range(tail)],
        "Junk": [(i, i * 3, f"junk-{i}") for i in range(rows * 2)],
    })
    return db


def main() -> None:
    db = build_database()
    base = db.relation("Base")

    print("== The partitioning")
    print(f"  shards: {db.shards}")
    for shard in range(base.shard_count):
        print(f"  Base shard {shard}: "
              f"{len(base.shard_ordinal_pairs(shard))} rows")

    print("\n== Merged shard statistics equal the aggregate")
    merged = RelationStatistics.merged(
        base.shard_statistics(), base.schema.arity
    )
    print(f"  aggregate: cardinality={base.stats.cardinality}, "
          f"distinct(b)={base.stats.distinct(1)}")
    print(f"  merged:    cardinality={merged.cardinality}, "
          f"distinct(b)={merged.distinct(1)}")

    plan = plan_query(parse_query(QUERY), db)
    print("\n== The plan (first step scans the large sharded Base)")
    print(plan.explain())

    print("\n== Identical results: serial vs sharded threads/processes")
    serial = list(execute_plan(plan, db))
    threaded = list(execute_plan_parallel(
        plan, db, parallelism=4, min_partition=1
    ))
    processed = list(execute_plan_parallel(
        plan, db, parallelism=4, use_processes=True, min_partition=1
    ))
    assert threaded == serial and processed == serial
    print(f"  {len(serial)} bindings, multiset AND order identical")

    print("\n== Shipped bytes: projected shard payloads vs whole database")

    def measure(shipping: str) -> tuple[int, float]:
        SHIPPING.reset()
        best = None
        for __ in range(3):
            started = time.perf_counter()
            result = list(execute_plan_parallel(
                plan, db, parallelism=4, use_processes=True,
                min_partition=1, shipping=shipping,
            ))
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
            assert result == serial
        bytes_per_run = SHIPPING.shipped_bytes // 3
        return bytes_per_run, best

    projected_bytes, projected_time = measure("plan")
    world_bytes, world_time = measure("world")
    print(f"  projected: {projected_bytes:>12,} B/run  "
          f"best {projected_time:.3f}s")
    print(f"  world:     {world_bytes:>12,} B/run  "
          f"best {world_time:.3f}s")
    print(f"  ratio:     {world_bytes / projected_bytes:.1f}x fewer bytes, "
          f"{world_time / projected_time:.1f}x faster")


if __name__ == "__main__":
    main()
