"""Planned union queries: per-disjunct EXPLAIN, shared prefixes, `+`.

Run with::

    python -m examples.ucq_planning

Section 3.1 restricts attention to SPJU queries; the U is the union of
conjunctive queries.  A union's disjuncts are alternative derivations
of the same output tuples, so per-tuple citations combine with ``+``
across disjuncts — and the disjuncts overlap *structurally* by
construction (they are variations on one head shape), so routing them
through the cost-based pipeline pays twice: repeated union traffic hits
the shared α-equivalence plan cache, and the disjuncts' common join
prefixes are reserved in the sub-plan memo and materialized once per
union instead of once per disjunct.

This walk-through cites a union over the paper's GtoPdb instance and
shows the ``+``-combined polynomials, renders the union's EXPLAIN — one
plan per disjunct, each carrying a ``shared prefix:`` line once the
memo holds the common Family ⋈ FC steps — drops a contained disjunct
via UCQ minimization, and closes with a steady-state timing of the
planned+memoized union against the seed-era per-disjunct evaluation on
an overlap-heavy shape.
"""

import time

from repro.citation.generator import CitationEngine
from repro.cq.evaluation import evaluate_query
from repro.cq.plan import QueryPlanner
from repro.cq.subplan import SubplanMemo
from repro.cq.ucq import parse_union_query
from repro.gtopdb.sample import paper_database
from repro.gtopdb.views import paper_registry
from repro.relational.database import Database
from repro.relational.schema import RelationSchema, Schema

#: The type pages of the introduction, stacked into one union.
TYPE_PAGES = (
    'Q(N) :- Family(F, N, Ty), Ty = "gpcr"; '
    'Q(N) :- Family(F, N, Ty), Ty = "vgic"'
)

#: Two disjuncts sharing the Family ⋈ FC join prefix; the second adds a
#: Person probe (and is therefore contained in the first).
PREFIX_UNION = (
    "Q(N) :- Family(F, N, Ty), FC(F, C); "
    "Q(N) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A)"
)


def citation_walkthrough() -> None:
    db = paper_database()
    engine = CitationEngine(db, paper_registry(db.schema))

    print("== The union (two type pages, one query)")
    union = parse_union_query(TYPE_PAGES)
    for disjunct in union:
        print(f"  {disjunct!r}")

    result = engine.cite_union(union)
    print(f"\n== {len(result.tuples)} result tuples; citations combine "
          "with + across disjuncts")
    for output, cited in list(result.tuples.items())[:4]:
        print(f"  {output}: {cited.polynomial}")
    sources = {
        key: value
        for record in result.records[:2]
        for key, value in record.items()
    }
    print(f"  sample credited sources: {sources}")


def explain_walkthrough() -> None:
    db = paper_database()
    union = parse_union_query(PREFIX_UNION)
    planner = QueryPlanner(db)
    memo = SubplanMemo()

    # One evaluation materializes the shared Family ⋈ FC prefix into
    # the memo; EXPLAIN then reports the reuse per disjunct.
    rows = union.evaluate(db, planner, memo)
    print(f"== Planned union evaluation: {len(rows)} rows, "
          f"{planner.misses} disjunct plans, memo hits={memo.hits}")

    print("\n== EXPLAIN (one plan per disjunct, shared prefix reported)")
    print(union.explain(db, planner, memo))

    minimized = union.minimized()
    print(f"\n== UCQ minimization: {len(union)} disjuncts -> "
          f"{len(minimized)} (the Person probe narrows disjunct 1, so "
          "disjunct 2 is contained and contributes nothing)")
    assert sorted(minimized.evaluate(db)) == sorted(rows)


def overlap_database() -> Database:
    """A fan-out/fan-in join prefix shared by every disjunct (the
    contraction recipe of the subplan_sharing example, smaller)."""
    suffixes = [f"Suf{i}" for i in range(6)]
    schema = Schema(
        [
            RelationSchema("Hop1", ["x", "y"]),
            RelationSchema("Hop2", ["y", "z"]),
            RelationSchema("Hop3", ["z", "w"]),
        ]
        + [RelationSchema(name, ["w", "t"]) for name in suffixes]
    )
    db = Database(schema)
    batches = {
        "Hop1": [(x, x % 10) for x in range(300)],
        "Hop2": [(y, y * 30 + k) for y in range(10) for k in range(30)],
        "Hop3": [(z, z + 1000) for z in range(0, 300, 10)]
        + [(-z - 1, -z) for z in range(2000)],
    }
    for index, name in enumerate(suffixes):
        batches[name] = [(w + 1000, w + index) for w in range(0, 300, 30)] \
            + [(-w - 1, -w) for w in range(400)]
    db.insert_batch(batches)
    return db


def timing_walkthrough() -> None:
    db = overlap_database()
    union = parse_union_query("; ".join(
        f"Q(X, T) :- Hop1(X, Y), Hop2(Y, Z), Hop3(Z, W), Suf{i}(W, T)"
        for i in range(6)
    ))
    planner = QueryPlanner(db)
    memo = SubplanMemo()

    def seed_reference():
        seen = {}
        for disjunct in union.disjuncts:
            for row in evaluate_query(disjunct, db):
                seen.setdefault(row)
        return list(seen)

    assert union.evaluate(db, planner, memo) == seed_reference()

    def best_of(callable_, rounds=3):
        best = None
        for __ in range(rounds):
            started = time.perf_counter()
            callable_()
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        return best

    planned = best_of(lambda: union.evaluate(db, planner, memo))
    seed = best_of(seed_reference)
    print("\n== Steady-state timing on the 6-disjunct overlap shape")
    print(f"  planned+memoized {planned:.4f}s per union")
    print(f"  per-disjunct     {seed:.4f}s per union")
    print(f"  speedup          {seed / planned:.1f}x "
          "(identical rows, identical order)")


def main() -> None:
    citation_walkthrough()
    print()
    explain_walkthrough()
    timing_walkthrough()


if __name__ == "__main__":
    main()
