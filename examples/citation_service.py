"""The citation service: one warm engine shared by concurrent clients.

Run with::

    python -m examples.citation_service

The paper's deployment model is a repository front-end answering
citation traffic for many consumers (Section 4).  ``repro serve`` is
that front-end: an asyncio HTTP service multiplexing every client over
**one** shared :class:`~repro.citation.generator.CitationEngine`, so
the warm state — plan cache, rewriting cache, sub-plan memo, secondary
indexes — amortizes across all traffic instead of dying with each
consumer process.

This walk-through starts the service in-process (the same
:class:`~repro.service.ServiceThread` the tests and benchmarks use),
sends single and batched citation requests, fires four concurrent
clients whose single-query requests coalesce into shared engine
batches, mutates a relation to show graceful cache invalidation, and
reads the ``/stats`` cache-counter deltas after each step.
"""

import threading

from repro.citation.generator import CitationEngine
from repro.citation.policy import focused_policy
from repro.gtopdb.sample import paper_database
from repro.gtopdb.views import paper_registry
from repro.service import ServiceClient, ServiceConfig, ServiceThread

GPCR = 'Q(N) :- Family(F, N, Ty), Ty = "gpcr"'
VGIC = 'Q(N) :- Family(F, N, Ty), Ty = "vgic"'
JOIN = "Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)"


def cache_counters(stats):
    engine = stats["engine"]
    return {
        "plan": engine["plan_cache"],
        "rewriting": engine["rewriting_cache"],
        "subplan": engine["subplan_memo"],
    }


def show_delta(label, before, after):
    parts = []
    for name in ("plan", "rewriting", "subplan"):
        hits = after[name]["hits"] - before[name]["hits"]
        misses = after[name]["misses"] - before[name]["misses"]
        parts.append(f"{name} +{hits} hits/+{misses} misses")
    print(f"   {label}: " + ", ".join(parts))


def main() -> None:
    registry = paper_registry()
    engine = CitationEngine(
        paper_database(), registry, policy=focused_policy(registry)
    )

    print("== starting the service on an ephemeral port")
    config = ServiceConfig(port=0, batch_linger_s=0.05)
    with ServiceThread(engine, config) as handle:
        print(f"   listening on {handle.base_url}")
        client = ServiceClient(handle.base_url)

        print("\n== one citation request (POST /cite)")
        reply = client.cite(GPCR)
        citation = reply.data["citations"][0]
        print(f"   status {reply.status}, first record: {citation}")

        print("\n== the same query again: served from the warm caches")
        before = cache_counters(client.stats())
        client.cite(GPCR)
        show_delta("repeat request", before, cache_counters(client.stats()))

        print("\n== a batch (POST /cite-batch) shares one engine pass")
        before = cache_counters(client.stats())
        reply = client.cite_batch([GPCR, VGIC, JOIN])
        print(f"   {reply.data['count']} results in one request")
        show_delta("batch", before, cache_counters(client.stats()))

        print("\n== four concurrent clients coalesce on the wire")
        barrier = threading.Barrier(4)

        def one_client(text):
            peer = ServiceClient(handle.base_url)
            try:
                barrier.wait(10.0)
                peer.cite(text)
            finally:
                peer.close()

        threads = [
            threading.Thread(target=one_client, args=(text,))
            for text in (GPCR, VGIC, GPCR, JOIN)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        batching = client.stats()["service"]["batching"]
        print(
            f"   {batching['batched_requests']} single-query requests "
            f"ran as {batching['batches_executed']} engine batches "
            f"(largest carried {batching['max_batch_size']})"
        )

        print("\n== a mutation invalidates gracefully (POST /insert)")
        version = client.stats()["engine"]["stats_version"]
        reply = client.insert("Family", [["F9999", "Demo family", "gpcr"]])
        print(
            f"   inserted {reply.data['inserted']} row; stats_version "
            f"{version} -> {reply.data['stats_version']}"
        )
        tuples = client.cite(GPCR, include_tuples=True).data["tuples"]
        names = sorted(entry["tuple"][0] for entry in tuples)
        print(f"   the next citation sees it: {names}")
        size = client.stats()["engine"]["plan_cache"]["size"]
        print(
            f"   plan cache kept its {size} entries — version-keyed, "
            "not flushed"
        )

        print("\n== request telemetry (GET /stats)")
        endpoints = client.stats()["service"]["endpoints"]
        for name in sorted(endpoints):
            latency = endpoints[name]["latency"]
            print(
                f"   {name}: {endpoints[name]['requests']} requests, "
                f"mean {latency['mean_ms']}ms, max {latency['max_ms']}ms"
            )
        client.close()
    print("\n== service drained and stopped")


if __name__ == "__main__":
    main()
