"""Cross-query sub-plan sharing: one shared join prefix, many queries.

Run with::

    python -m examples.subplan_sharing

The paper's deployment is a repository front-end answering heavy,
template-shaped citation traffic (Section 4, "caching and
materialization").  Such batches overlap *structurally*: different
queries often plan to the same first join steps — the same shared
prefix — and differ only in a final probe.  The per-query caches
(rewriting enumeration, α-equivalent plans, warmed indexes) still
re-evaluate that prefix once per query; the sub-plan memo
(:mod:`repro.cq.subplan`) evaluates it once per *batch*.

This walk-through builds a three-hop join prefix shared by six queries,
shows the prefix keys and the ``shared prefix: ... reused from memo``
EXPLAIN line, runs the batch through ``cite_batch`` with sharing on and
off, and reports the hit counters and the steady-state speedup.
"""

import time

from repro.citation.generator import CitationEngine
from repro.cq.parser import parse_query
from repro.cq.plan import prefix_keys
from repro.cq.subplan import explain_with_memo
from repro.relational.database import Database
from repro.relational.schema import RelationSchema, Schema
from repro.views.registry import ViewRegistry
from repro.workload.runner import run_workload

#: Queries in the batch; each shares the Hop1 ⋈ Hop2 ⋈ Hop3 prefix and
#: ends with its own suffix probe.
SUFFIXES = 6


def build_database() -> Database:
    """A fan-out/fan-in join prefix with per-query suffix relations.

    ``Hop1 ⋈ Hop2`` expands (10 hub values fanning out 30 ways), then
    ``Hop3`` contracts to a 10% sliver — the prefix does far more work
    than its output size, which is exactly when evaluating it once per
    batch pays.  Junk rows keep the suffix relations large enough that
    the cost-based planner schedules them last.
    """
    suffixes = [f"Suf{i}" for i in range(SUFFIXES)]
    schema = Schema(
        [
            RelationSchema("Hop1", ["x", "y"]),
            RelationSchema("Hop2", ["y", "z"]),
            RelationSchema("Hop3", ["z", "w"]),
        ]
        + [RelationSchema(name, ["w", "t"]) for name in suffixes]
    )
    db = Database(schema)
    batches = {
        "Hop1": [(x, x % 10) for x in range(300)],
        "Hop2": [(y, y * 30 + k) for y in range(10) for k in range(30)],
        "Hop3": [(z, z + 1000) for z in range(0, 300, 10)]
        + [(-z - 1, -z) for z in range(5000)],
    }
    for index, name in enumerate(suffixes):
        batches[name] = [(w + 1000, w + index) for w in range(0, 300, 30)] \
            + [(-w - 1, -w) for w in range(1000)]
    db.insert_batch(batches)
    return db


def batch_queries() -> list[str]:
    return [
        f"Q(X, T) :- Hop1(X, Y), Hop2(Y, Z), Hop3(Z, W), Suf{i}(W, T)"
        for i in range(SUFFIXES)
    ]


def main() -> None:
    db = build_database()
    registry = ViewRegistry(db.schema)
    queries = batch_queries()

    print("== The overlapping batch")
    for text in queries:
        print(f"  {text}")

    engine = CitationEngine(db, registry)
    report = run_workload(engine, queries)
    print("\n== First batch (cold memo)")
    print(report.describe())

    print("\n== Prefix keys: the plans share their first three steps")
    plans = [engine.planner.plan(parse_query(text)) for text in queries[:2]]
    keys = [prefix_keys(plan)[0] for plan in plans]
    for length in range(1, 5):
        shared = keys[0][length - 1] == keys[1][length - 1]
        print(f"  prefix of length {length}: "
              f"{'shared' if shared else 'per-query'}")

    print("\n== EXPLAIN with the warmed memo")
    print(explain_with_memo(plans[0], engine.subplan_memo, db,
                            engine._materialized()))

    print("\n== Second batch (warm memo: every shared prefix seeds)")
    print(run_workload(engine, queries).describe())

    print("\n== Steady-state timing: sharing on vs off")

    def steady(share: bool) -> float:
        timed = CitationEngine(db, registry, share_subplans=share)
        timed.cite_batch(queries)  # warm every cache
        best = None
        for __ in range(3):
            started = time.perf_counter()
            timed.cite_batch(queries)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        return best

    shared = steady(True)
    unshared = steady(False)
    print(f"  shared   {shared:.4f}s per batch")
    print(f"  unshared {unshared:.4f}s per batch")
    print(f"  speedup  {unshared / shared:.1f}x")


if __name__ == "__main__":
    main()
